#include "pax/coherence/eci_adapter.hpp"

#include <cstring>

#include "pax/common/check.hpp"

namespace pax::coherence {

const char* eci_op_name(EciOp op) {
  switch (op) {
    case EciOp::kRldd:
      return "RLDD";
    case EciOp::kRldx:
      return "RLDX";
    case EciOp::kRc2d:
      return "RC2D";
    case EciOp::kVicd:
      return "VICD";
    case EciOp::kVicc:
      return "VICC";
    case EciOp::kVics:
      return "VICS";
  }
  return "?";
}

EciAdapter::EciAdapter(device::PaxDevice* device) : device_(device) {
  PAX_CHECK(device != nullptr);
}

EciBlockData EciAdapter::read_block(EciBlockIndex block) {
  EciBlockData data;
  for (std::size_t l = 0; l < kLinesPerEciBlock; ++l) {
    const LineIndex line{block.first_line().value + l};
    ++stats_.cxl_reads;
    const LineData line_data = device_->read_line(line);
    std::memcpy(data.bytes.data() + l * kCacheLineSize,
                line_data.bytes.data(), kCacheLineSize);
  }
  return data;
}

Result<EciResponse> EciAdapter::handle(const EciMessage& message) {
  ++stats_.messages;
  EciResponse response;

  switch (message.op) {
    case EciOp::kRldd:
      // Shared load: two CXL RdSharedes, block assembled for the response.
      response.data = read_block(message.block);
      return response;

    case EciOp::kRldx:
      // Exclusive load: write intent on both lines (undo logging), then the
      // current data travels back like RdOwn's.
      for (std::size_t l = 0; l < kLinesPerEciBlock; ++l) {
        const LineIndex line{message.block.first_line().value + l};
        ++stats_.cxl_write_intents;
        PAX_RETURN_IF_ERROR(device_->write_intent(line));
      }
      response.data = read_block(message.block);
      return response;

    case EciOp::kRc2d:
      // Upgrade without data transfer: intent only. The adapter must NOT
      // touch the device's buffered copy (the remote already holds the
      // block; the device will learn the new value at eviction/persist).
      for (std::size_t l = 0; l < kLinesPerEciBlock; ++l) {
        const LineIndex line{message.block.first_line().value + l};
        ++stats_.cxl_write_intents;
        PAX_RETURN_IF_ERROR(device_->write_intent(line));
      }
      return response;

    case EciOp::kVicd: {
      // Dirty victim: split the 128 B payload into two DirtyEvicts.
      if (!message.data) {
        return invalid_argument("VICD without block data");
      }
      for (std::size_t l = 0; l < kLinesPerEciBlock; ++l) {
        const LineIndex line{message.block.first_line().value + l};
        ++stats_.cxl_writebacks;
        device_->writeback_line(
            line, LineData::from_bytes(
                      {message.data->bytes.data() + l * kCacheLineSize,
                       kCacheLineSize}));
      }
      return response;
    }

    case EciOp::kVicc:
    case EciOp::kVics:
      // Clean/shared victims carry no modification: filtered out — the
      // "filters" half of the paper's "filters and adapts".
      ++stats_.filtered;
      response.filtered = true;
      return response;
  }
  PAX_UNREACHABLE("bad ECI op");
}

}  // namespace pax::coherence
