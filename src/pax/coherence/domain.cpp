#include "pax/coherence/domain.hpp"

#include "pax/common/check.hpp"

namespace pax::coherence {

CoherenceDomain::CoherenceDomain(device::PaxDevice* device,
                                 const HostCacheConfig& core_config,
                                 unsigned core_count) {
  PAX_CHECK(device != nullptr);
  PAX_CHECK(core_count >= 1);
  cores_.reserve(core_count);
  for (unsigned i = 0; i < core_count; ++i) {
    cores_.push_back(std::make_unique<HostCacheSim>(device, core_config));
  }
  // Wire peer snooping: core i consults every other core before acquiring
  // a line.
  for (unsigned i = 0; i < core_count; ++i) {
    cores_[i]->set_peer_snooper([this, i](LineIndex line, bool exclusive) {
      for (unsigned j = 0; j < cores_.size(); ++j) {
        if (j == i) continue;
        if (exclusive) {
          // SnpInv: peers relinquish the line entirely; a Modified peer
          // writes back through the device first.
          cores_[j]->snoop_invalidate(line);
        } else {
          // SnpData: only a Modified peer matters for a load miss — it
          // downgrades to Shared and its data reaches the home so our
          // upcoming device read returns the newest value. (Shared peers
          // hold the same bytes the device already has.)
          if (cores_[j]->line_state(line) == MesiState::kModified) {
            auto data = cores_[j]->snoop_data(line);
            PAX_CHECK(data.has_value());
            cores_[j]->device_writeback_for_snoop(line, *data);
          }
        }
      }
    });
  }
}

device::PaxDevice::PullFn CoherenceDomain::pull_fn() {
  return [this](LineIndex line) -> std::optional<LineData> {
    std::optional<LineData> newest;
    for (auto& core : cores_) {
      // Downgrade every holder; the Modified one (at most one exists under
      // MESI) supplies the value.
      if (core->line_state(line) == MesiState::kModified) {
        newest = core->snoop_data(line);
      } else {
        (void)core->snoop_data(line);  // S/E → S downgrade
      }
    }
    return newest;
  };
}

void CoherenceDomain::drop_all_without_writeback() {
  for (auto& core : cores_) core->drop_all_without_writeback();
}

}  // namespace pax::coherence
