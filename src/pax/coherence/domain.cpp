#include "pax/coherence/domain.hpp"

#include <algorithm>

#include "pax/common/check.hpp"

namespace pax::coherence {
namespace {

// Set while the dispatching thread already pre-snooped the peers; the wired
// in-op snooper must then stay quiet (re-snooping would lock a peer's mutex
// while this core's is held — the AB-BA the pre-snoop exists to avoid).
thread_local bool t_presnooped = false;

struct PresnoopScope {
  PresnoopScope() { t_presnooped = true; }
  ~PresnoopScope() { t_presnooped = false; }
};

}  // namespace

CoherenceDomain::CoherenceDomain(device::PaxDevice* device,
                                 const HostCacheConfig& core_config,
                                 unsigned core_count) {
  PAX_CHECK(device != nullptr);
  PAX_CHECK(core_count >= 1);
  cores_.reserve(core_count);
  core_mu_.reserve(core_count);
  for (unsigned i = 0; i < core_count; ++i) {
    cores_.push_back(std::make_unique<HostCacheSim>(device, core_config));
    core_mu_.push_back(std::make_unique<std::mutex>());
  }
  // Wire peer snooping: core i consults every other core before acquiring
  // a line. This path serves direct single-threaded core() use; the
  // dispatch entry points pre-snoop instead and suppress it.
  for (unsigned i = 0; i < core_count; ++i) {
    cores_[i]->set_peer_snooper([this, i](LineIndex line, bool exclusive) {
      if (t_presnooped) return;
      for (unsigned j = 0; j < cores_.size(); ++j) {
        if (j == i) continue;
        snoop_peer(j, line, exclusive);
      }
    });
  }
}

void CoherenceDomain::presnoop_peers(unsigned core_id, LineIndex line,
                                     bool exclusive) {
  for (unsigned j = 0; j < cores_.size(); ++j) {
    if (j == core_id) continue;
    std::lock_guard peer_lock(*core_mu_[j]);
    snoop_peer(j, line, exclusive);
  }
}

void CoherenceDomain::snoop_peer(unsigned peer, LineIndex line,
                                 bool exclusive) {
  if (exclusive) {
    // SnpInv: the peer relinquishes the line entirely; a Modified peer
    // writes back through the device first — unless the seeded bug drops
    // the dirty data on the floor.
    if (faults_.suppress_snoop_writeback) {
      cores_[peer]->drop_line_without_writeback(line);
    } else {
      cores_[peer]->snoop_invalidate(line);
    }
    return;
  }
  // SnpData: only a Modified peer matters for a load miss — it downgrades
  // to Shared and its data reaches the home so the upcoming device read
  // returns the newest value. (Shared peers hold the same bytes the device
  // already has.)
  if (cores_[peer]->line_state(line) == MesiState::kModified) {
    auto data = cores_[peer]->snoop_data(line);
    PAX_CHECK(data.has_value());
    if (!faults_.suppress_snoop_writeback) {
      cores_[peer]->device_writeback_for_snoop(line, *data);
    }
  }
}

void CoherenceDomain::load_one_line(unsigned core_id, PoolOffset offset,
                                    std::span<std::byte> out) {
  const LineIndex line = LineIndex::containing(offset);
  std::shared_lock gate(gate_);
  if (faults_.skip_line_serialization) {
    // Seeded bug: the request never reaches the per-address ordering point,
    // so no peer is snooped and a stale fill can be observed.
    std::lock_guard core_lock(*core_mu_[core_id]);
    PresnoopScope suppress;
    cores_[core_id]->load(offset, out);
    return;
  }
  std::lock_guard line_lock(line_mutex(line));
  presnoop_peers(core_id, line, /*exclusive=*/false);
  std::lock_guard core_lock(*core_mu_[core_id]);
  PresnoopScope suppress;
  cores_[core_id]->load(offset, out);
}

Status CoherenceDomain::store_one_line(unsigned core_id, PoolOffset offset,
                                       std::span<const std::byte> data) {
  const LineIndex line = LineIndex::containing(offset);
  std::shared_lock gate(gate_);
  if (faults_.skip_line_serialization) {
    std::lock_guard core_lock(*core_mu_[core_id]);
    PresnoopScope suppress;
    return cores_[core_id]->store(offset, data);
  }
  std::lock_guard line_lock(line_mutex(line));
  presnoop_peers(core_id, line, /*exclusive=*/true);
  std::lock_guard core_lock(*core_mu_[core_id]);
  PresnoopScope suppress;
  return cores_[core_id]->store(offset, data);
}

void CoherenceDomain::load(unsigned core_id, PoolOffset offset,
                           std::span<std::byte> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = offset + done;
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, out.size() - done);
    load_one_line(core_id, cur, out.subspan(done, n));
    done += n;
  }
}

Status CoherenceDomain::store(unsigned core_id, PoolOffset offset,
                              std::span<const std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const PoolOffset cur = offset + done;
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, data.size() - done);
    PAX_RETURN_IF_ERROR(store_one_line(core_id, cur, data.subspan(done, n)));
    done += n;
  }
  return Status::ok();
}

std::uint64_t CoherenceDomain::load_u64(unsigned core_id, PoolOffset offset) {
  std::uint64_t v = 0;
  load(core_id, offset, std::as_writable_bytes(std::span(&v, 1)));
  return v;
}

Status CoherenceDomain::store_u64(unsigned core_id, PoolOffset offset,
                                  std::uint64_t value) {
  return store(core_id, offset, std::as_bytes(std::span(&value, 1)));
}

std::optional<LineData> CoherenceDomain::pull_newest_quiesced(LineIndex line) {
  std::optional<LineData> newest;
  for (unsigned i = 0; i < cores_.size(); ++i) {
    // Downgrade every holder; the Modified one (at most one exists under
    // MESI) supplies the value.
    if (cores_[i]->line_state(line) == MesiState::kModified) {
      newest = cores_[i]->snoop_data(line);
    } else {
      (void)cores_[i]->snoop_data(line);  // S/E → S downgrade
    }
  }
  return newest;
}

Result<Epoch> CoherenceDomain::persist(device::PaxDevice* device) {
  PAX_CHECK(device != nullptr);
  // Exclusive gate: every dispatch op has drained and none can start, so
  // the pull below reads the core simulators lock-free. Keeping the core
  // mutexes out of the pull is load-bearing — a pull that locked them
  // while the device holds its exclusive epoch lock would invert against
  // dispatch (core mutex held → device epoch gate), the deadlock the LOCK
  // ORDER note in the header rules out.
  std::unique_lock gate(gate_);
  if (faults_.skip_persist_pull) {
    return device->persist(
        [](LineIndex) -> std::optional<LineData> { return std::nullopt; });
  }
  return device->persist([this](LineIndex line) -> std::optional<LineData> {
    return pull_newest_quiesced(line);
  });
}

device::PaxDevice::PullFn CoherenceDomain::pull_fn() {
  if (faults_.skip_persist_pull) {
    // Seeded bug: claim the host caches nothing, without downgrading
    // anyone — persist() then commits the device's stale copies.
    return [](LineIndex) -> std::optional<LineData> { return std::nullopt; };
  }
  return [this](LineIndex line) -> std::optional<LineData> {
    std::optional<LineData> newest;
    for (unsigned i = 0; i < cores_.size(); ++i) {
      // Downgrade every holder; the Modified one (at most one exists under
      // MESI) supplies the value.
      std::lock_guard core_lock(*core_mu_[i]);
      if (cores_[i]->line_state(line) == MesiState::kModified) {
        newest = cores_[i]->snoop_data(line);
      } else {
        (void)cores_[i]->snoop_data(line);  // S/E → S downgrade
      }
    }
    return newest;
  };
}

void CoherenceDomain::drop_all_without_writeback() {
  for (unsigned i = 0; i < cores_.size(); ++i) {
    std::lock_guard core_lock(*core_mu_[i]);
    cores_[i]->drop_all_without_writeback();
  }
}

}  // namespace pax::coherence
