#include "pax/coherence/trace.hpp"

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "pax/common/check.hpp"
#include "pax/common/crc.hpp"

namespace pax::coherence {
namespace {

constexpr std::uint64_t kTraceMagic = 0x4543415254584150ULL;  // "PAXTRACE"
constexpr std::uint32_t kTraceVersion = 1;

struct TraceHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t masked_crc;  // over the packed event array
  std::uint64_t count;
};

struct PackedEvent {
  std::uint64_t line;
  std::uint8_t op;
  std::uint8_t carried_data;
  std::uint8_t pad[6];
};
static_assert(sizeof(PackedEvent) == 16);

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status save_trace(const std::string& path,
                  const std::vector<CxlEvent>& events) {
  std::vector<PackedEvent> packed(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    packed[i] = {events[i].line.value,
                 static_cast<std::uint8_t>(events[i].op),
                 static_cast<std::uint8_t>(events[i].carried_data ? 1 : 0),
                 {}};
  }

  TraceHeader header{kTraceMagic, kTraceVersion,
                     mask_crc(crc32c(packed.data(),
                                     packed.size() * sizeof(PackedEvent))),
                     events.size()};

  File f(std::fopen(path.c_str(), "wb"));
  if (!f) return io_error("cannot create trace file " + path);
  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1 ||
      (packed.size() > 0 &&
       std::fwrite(packed.data(), sizeof(PackedEvent), packed.size(),
                   f.get()) != packed.size())) {
    return io_error("short write to trace file " + path);
  }
  return Status::ok();
}

Result<std::vector<CxlEvent>> load_trace(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  if (!f) return io_error("cannot open trace file " + path);

  TraceHeader header{};
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return corruption("trace file truncated (header)");
  }
  if (header.magic != kTraceMagic) return corruption("bad trace magic");
  if (header.version != kTraceVersion) {
    return corruption("unsupported trace version");
  }
  std::vector<PackedEvent> packed(header.count);
  if (header.count > 0 &&
      std::fread(packed.data(), sizeof(PackedEvent), header.count, f.get()) !=
          header.count) {
    return corruption("trace file truncated (events)");
  }
  if (header.masked_crc !=
      mask_crc(crc32c(packed.data(), packed.size() * sizeof(PackedEvent)))) {
    return corruption("trace CRC mismatch");
  }

  std::vector<CxlEvent> events(header.count);
  for (std::size_t i = 0; i < packed.size(); ++i) {
    if (packed[i].op > static_cast<std::uint8_t>(CxlOp::kGo)) {
      return corruption("trace contains an unknown opcode");
    }
    events[i] = {static_cast<CxlOp>(packed[i].op),
                 LineIndex{packed[i].line}, packed[i].carried_data != 0};
  }
  return events;
}

TraceSummary summarize_trace(const std::vector<CxlEvent>& events) {
  TraceSummary s;
  std::unordered_set<LineIndex> lines;
  for (const auto& e : events) {
    ++s.total;
    lines.insert(e.line);
    switch (e.op) {
      case CxlOp::kRdShared:
        ++s.rd_shared;
        break;
      case CxlOp::kRdOwn:
        ++s.rd_own;
        break;
      case CxlOp::kDirtyEvict:
        ++s.dirty_evicts;
        break;
      case CxlOp::kCleanEvict:
        ++s.clean_evicts;
        break;
      case CxlOp::kSnpData:
      case CxlOp::kSnpInv:
        ++s.snoops;
        break;
      case CxlOp::kGo:
        break;
    }
  }
  s.distinct_lines = lines.size();
  return s;
}

Result<ReplayReport> replay_trace(const std::vector<CxlEvent>& events,
                                  device::PaxDevice* device,
                                  const ReplayOptions& options) {
  PAX_CHECK(device != nullptr);
  ReplayReport report;

  // Deterministic synthetic payload per (line, nth-writeback).
  std::unordered_map<LineIndex, std::uint64_t> write_counter;
  // Lines announced (RdOwn'd) in the current replay epoch. The replayer
  // inserts persists at points the original run did not have, which can
  // split an RdOwn from its DirtyEvict across an epoch boundary; the
  // write-back must then re-announce (exactly what a re-running host would
  // do after the persist's downgrade).
  std::unordered_set<LineIndex> announced;

  for (const auto& event : events) {
    switch (event.op) {
      case CxlOp::kRdShared:
        (void)device->read_line(event.line);
        break;
      case CxlOp::kRdOwn: {
        PAX_RETURN_IF_ERROR(device->write_intent(event.line));
        announced.insert(event.line);
        break;
      }
      case CxlOp::kDirtyEvict: {
        if (!announced.contains(event.line)) {
          PAX_RETURN_IF_ERROR(device->write_intent(event.line));
          announced.insert(event.line);
        }
        LineData data;
        const std::uint64_t n = ++write_counter[event.line];
        for (std::size_t b = 0; b < kCacheLineSize; ++b) {
          data.bytes[b] =
              static_cast<std::byte>((event.line.value * 31 + n * 7 + b) &
                                     0xff);
        }
        device->writeback_line(event.line, data);
        break;
      }
      case CxlOp::kCleanEvict:
        break;  // no device action
      case CxlOp::kSnpData:
      case CxlOp::kSnpInv:
      case CxlOp::kGo:
        ++report.messages_skipped;
        continue;  // device-originated / completion: not replayed
    }
    ++report.messages_replayed;
    if (options.persist_every != 0 &&
        report.messages_replayed % options.persist_every == 0) {
      auto e = device->persist(nullptr);
      if (!e.ok()) return e.status();
      ++report.persists;
      announced.clear();
    }
  }
  auto e = device->persist(nullptr);
  if (!e.ok()) return e.status();
  ++report.persists;
  return report;
}

}  // namespace pax::coherence
