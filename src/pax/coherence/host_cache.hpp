// Host CPU cache hierarchy simulator.
//
// Models an inclusive 3-level (L1/L2/LLC) set-associative hierarchy of a
// single core with MESI states for device-homed (vPM) lines. This is the
// reproduction's stand-in for both of the paper's prototyping tracks (§4):
// where the paper rewrites loads/stores with Pin and simulates a CPU cache
// per access, our workloads drive load()/store() on this object, and LLC
// misses for vPM lines turn into CXL.cache messages to the PaxDevice.
//
// Two things the crash-consistency design depends on are modelled exactly:
//   * a store to a line not held Modified/Exclusive emits RdOwn — the
//     device's only chance to undo-log the pre-image (§3.1 "Stores");
//   * SnpData (issued per logged line during persist()) downgrades M/E → S
//     and forwards the dirty data, so next-epoch stores must upgrade again
//     and are therefore observed (§3.3's end-of-epoch pull).
//
// The hierarchy also produces the per-level hit/miss statistics that drive
// the Figure 2a AMAT analysis.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "pax/common/types.hpp"
#include "pax/coherence/cxl.hpp"
#include "pax/device/pax_device.hpp"

namespace pax::coherence {

struct CacheLevelConfig {
  std::size_t capacity_bytes;
  unsigned ways;
};

/// Which CXL protocol the device is attached with (§6 explores the
/// visibility difference).
enum class DeviceProtocol {
  /// CXL.cache: the device sees ownership requests (RdOwn) and can snoop —
  /// the full PAX design.
  kCxlCache,
  /// CXL.mem: the device is a memory expander. It sees reads and write-backs
  /// only; no write intent, no snoops. persist() requires a host-side CLWB
  /// sweep of every dirty line (clwb_all_dirty) because the device cannot
  /// pull.
  kCxlMem,
};

struct HostCacheConfig {
  // Skylake Xeon Gold 6142 (Cloudlab c6420, the paper's testbed §5).
  CacheLevelConfig l1{32 * 1024, 8};
  CacheLevelConfig l2{1024 * 1024, 16};
  CacheLevelConfig llc{22 * 1024 * 1024, 11};
  DeviceProtocol protocol = DeviceProtocol::kCxlCache;
  /// Record every CXL message in trace() (tests; off for big benches).
  bool record_trace = false;
};

struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses() const { return accesses - hits; }
  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses()) /
                               static_cast<double>(accesses);
  }
};

struct HostCacheStats {
  LevelStats l1, l2, llc;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t rd_shared = 0;    // LLC load misses → device
  std::uint64_t rd_own = 0;       // store misses/upgrades → device
  std::uint64_t upgrades = 0;     // of which: data was present, S → M
  std::uint64_t dirty_evicts = 0;
  std::uint64_t clean_evicts = 0;
  std::uint64_t snoops_served = 0;
  std::uint64_t mem_writes = 0;   // CXL.mem MemWr messages sent
  std::uint64_t clwbs = 0;        // CLWB instructions issued (.mem persist)
};

/// Tag-only set-associative level with LRU replacement.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheLevelConfig& config);

  /// Touches `line`: returns true on hit; on miss, inserts it and reports
  /// any evicted line through `evicted`.
  bool access(LineIndex line, std::optional<LineIndex>& evicted);

  bool contains(LineIndex line) const;
  void remove(LineIndex line);
  std::size_t size() const { return live_; }

 private:
  struct Entry {
    bool valid = false;
    LineIndex line;
    std::uint64_t lru_tick = 0;
  };

  std::vector<Entry>& set_for(LineIndex line);
  const std::vector<Entry>& set_for(LineIndex line) const;

  unsigned ways_;
  std::vector<std::vector<Entry>> sets_;
  std::uint64_t tick_ = 0;
  std::size_t live_ = 0;
};

class HostCacheSim {
 public:
  /// All loads/stores must fall inside the device's pool data extent; the
  /// device is the home agent for those addresses.
  HostCacheSim(device::PaxDevice* device, const HostCacheConfig& config);

  // --- Data path ---------------------------------------------------------

  /// Byte-granular load/store through the simulated hierarchy (may span
  /// lines). store() returns the device's undo-logging status — kOutOfSpace
  /// surfaces when the log extent fills.
  void load(PoolOffset offset, std::span<std::byte> out);
  Status store(PoolOffset offset, std::span<const std::byte> data);

  std::uint64_t load_u64(PoolOffset offset);
  Status store_u64(PoolOffset offset, std::uint64_t value);

  // --- Coherence back-channel ---------------------------------------------

  /// SnpData handler: if the host caches `line`, downgrades it to Shared
  /// and returns the current data; nullopt otherwise. Wire this as the
  /// device's persist() pull function.
  std::optional<LineData> snoop_data(LineIndex line);

  /// Convenience: a PullFn bound to this host cache (CXL.cache mode only;
  /// in .mem mode the device cannot snoop, so this returns a function that
  /// always reports "host has nothing" — use clwb_all_dirty() first).
  device::PaxDevice::PullFn pull_fn();

  /// CLWB sweep (the .mem persist protocol, and what §4 contrasts against
  /// device-side pulls): writes every Modified line back to the device and
  /// downgrades it to Shared. Counts one CLWB per dirty line. Returns the
  /// first error from the device's logging path.
  Status clwb_all_dirty();

  DeviceProtocol protocol() const { return config_.protocol; }

  /// SnpInv handler: writes back a Modified copy of `line` to the device,
  /// then invalidates the line everywhere in this cache. Used by the
  /// multi-core CoherenceDomain when a peer requests exclusive ownership.
  void snoop_invalidate(LineIndex line);

  /// A *faulty* SnpInv: invalidates `line` everywhere in this cache but
  /// drops a Modified copy instead of writing it back — the classic
  /// lost-update coherence bug. Only the litmus harness's seeded-bug mode
  /// (coherence::DomainFaults) calls this; it exists so the harness can
  /// prove it detects the bug.
  void drop_line_without_writeback(LineIndex line);

  /// Forwards a snoop response's data to the device (the home), as the
  /// fabric does when SnpData hits a Modified line. The line must have been
  /// modified this epoch (it was, or it couldn't have been Modified).
  void device_writeback_for_snoop(LineIndex line, const LineData& data) {
    device_->writeback_line(line, data);
  }

  /// Hook invoked before this cache acquires a line (`exclusive` = it will
  /// modify). The CoherenceDomain uses it to snoop the other cores first.
  using PeerSnooper = std::function<void(LineIndex, bool exclusive)>;
  void set_peer_snooper(PeerSnooper snooper) {
    peer_snooper_ = std::move(snooper);
  }

  /// Simulates power loss on the host side: all cached state vanishes
  /// without any write-back (a real crash never flushes).
  void drop_all_without_writeback();

  /// Writes back every Modified line and invalidates everything (orderly
  /// teardown, *not* a crash).
  void flush_and_invalidate_all();

  const HostCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HostCacheStats{}; }

  const std::vector<CxlEvent>& trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  MesiState line_state(LineIndex line) const;

 private:
  // Walks the hierarchy for stats and residency; true if the line was
  // resident (in LLC) before the walk. Handles inclusive back-invalidation
  // and dirty write-back on LLC eviction.
  bool touch(LineIndex line);

  void evict_from_llc(LineIndex line);
  void record(CxlOp op, LineIndex line, bool carried_data);

  device::PaxDevice* device_;
  HostCacheConfig config_;
  bool record_trace_;
  CacheLevel l1_, l2_, llc_;
  std::unordered_map<LineIndex, MesiState> state_;  // resident lines only
  std::unordered_map<LineIndex, LineData> data_;    // resident lines only
  HostCacheStats stats_;
  std::vector<CxlEvent> trace_;
  PeerSnooper peer_snooper_;
};

}  // namespace pax::coherence
