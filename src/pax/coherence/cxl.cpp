#include "pax/coherence/cxl.hpp"

namespace pax::coherence {

const char* cxl_op_name(CxlOp op) {
  switch (op) {
    case CxlOp::kRdShared:
      return "RdShared";
    case CxlOp::kRdOwn:
      return "RdOwn";
    case CxlOp::kDirtyEvict:
      return "DirtyEvict";
    case CxlOp::kCleanEvict:
      return "CleanEvict";
    case CxlOp::kSnpData:
      return "SnpData";
    case CxlOp::kSnpInv:
      return "SnpInv";
    case CxlOp::kGo:
      return "GO";
  }
  return "?";
}

}  // namespace pax::coherence
