// ECI → CXL adapter: the paper's §4 "adapter layer".
//
// "The coherence messages observed by the FPGA [on Enzian] are at a lower
// level than what a CXL-enabled device would receive, and they are tightly
// coupled to the ThunderX's microarchitecture. Our plan is to implement an
// 'adapter' layer at the FPGA that filters and adapts the ThunderX's
// coherence messages to match the CXL specification so our implementation
// will be immediately portable to commodity machines when CXL devices
// arrive."
//
// This module implements that layer over a *simplified* ECI-like message
// vocabulary (the real ECI has dozens of VCs and message types; the subset
// here captures the semantics PAX needs — names follow the ThunderX victim/
// load conventions but are not a wire-accurate ECI encoding):
//
//   RLDD   remote load, data       → CXL RdShared
//   RLDX   remote load, exclusive  → CXL RdOwn (write-intent: undo-log)
//   RC2D   request change to dirty → CXL RdOwn upgrade (data stays remote)
//   VICD   victim dirty (data)     → CXL DirtyEvict
//   VICC   victim clean            → filtered (no device action; counted)
//   VICS   victim shared           → filtered
//
// Two genuine microarchitectural mismatches are adapted, not just renamed:
//   * ThunderX cache blocks are 128 B; CXL.cache lines are 64 B. Every ECI
//     block message fans out into operations on two adjacent lines.
//   * RC2D carries no data (the remote core already holds the block); the
//     adapter must not overwrite the device's buffered copy, only register
//     write intent — exactly the paper's "the message only notifies the
//     device that the CPU will modify the cache line, not what it will
//     change it to" (§3.3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/device/pax_device.hpp"

namespace pax::coherence {

/// ThunderX-1 cache block size.
inline constexpr std::size_t kEciBlockSize = 128;
inline constexpr std::size_t kLinesPerEciBlock = kEciBlockSize / kCacheLineSize;

/// Index of a 128 B ECI block within the pool.
struct EciBlockIndex {
  std::uint64_t value = 0;
  LineIndex first_line() const { return LineIndex{value * kLinesPerEciBlock}; }
};

enum class EciOp : std::uint8_t {
  kRldd,  // load shared
  kRldx,  // load exclusive (will modify)
  kRc2d,  // upgrade shared → dirty, no data transfer
  kVicd,  // dirty victim, carries 128 B
  kVicc,  // clean victim
  kVics,  // shared victim
};

const char* eci_op_name(EciOp op);

/// One 128 B block payload.
struct EciBlockData {
  std::array<std::byte, kEciBlockSize> bytes{};
};

struct EciMessage {
  EciOp op;
  EciBlockIndex block;
  std::optional<EciBlockData> data;  // VICD only
};

/// Response to loads: the block contents (assembled from two CXL lines).
struct EciResponse {
  bool filtered = false;             // VICC/VICS: dropped at the adapter
  std::optional<EciBlockData> data;  // RLDD/RLDX
};

struct EciAdapterStats {
  std::uint64_t messages = 0;
  std::uint64_t filtered = 0;           // VICC/VICS dropped
  std::uint64_t cxl_reads = 0;          // RdShared issued
  std::uint64_t cxl_write_intents = 0;  // RdOwn issued
  std::uint64_t cxl_writebacks = 0;     // DirtyEvict issued
};

/// Stateless translator: ECI block messages in, CXL line operations out,
/// against a PaxDevice. The device neither knows nor cares that the host
/// speaks ECI — the paper's portability argument.
class EciAdapter {
 public:
  explicit EciAdapter(device::PaxDevice* device);

  /// Translates and executes one message. Load responses carry the block.
  Result<EciResponse> handle(const EciMessage& message);

  const EciAdapterStats& stats() const { return stats_; }

 private:
  EciBlockData read_block(EciBlockIndex block);

  device::PaxDevice* device_;
  EciAdapterStats stats_;
};

}  // namespace pax::coherence
