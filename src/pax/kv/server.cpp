#include "pax/kv/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <utility>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::kv {

namespace {

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

const char* commit_mode_name(KvServerOptions::CommitMode mode) {
  switch (mode) {
    case KvServerOptions::CommitMode::kGroup:
      return "group";
    case KvServerOptions::CommitMode::kIndependent:
      return "independent";
    case KvServerOptions::CommitMode::kVolatile:
      return "volatile";
  }
  return "?";
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

}  // namespace

Result<std::unique_ptr<KvServer>> KvServer::start(
    const KvServerOptions& options) {
  auto server = std::unique_ptr<KvServer>(new KvServer());
  server->options_ = options;

  auto store = KvStore::create_in_memory(options.store);
  if (!store.ok()) return store.status();
  server->store_ = std::move(store).value();

  PAX_RETURN_IF_ERROR(server->setup_listener(options));

  server->epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (server->epoll_fd_ < 0) return io_error("epoll_create1 failed");
  server->wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (server->wake_fd_ < 0) return io_error("eventfd failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->listen_fd_, &ev) <
      0) {
    return io_error("epoll_ctl(listen) failed");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (epoll_ctl(server->epoll_fd_, EPOLL_CTL_ADD, server->wake_fd_, &ev) < 0) {
    return io_error("epoll_ctl(wake) failed");
  }

  const std::size_t shards = server->store_->shard_count();
  server->workers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    server->workers_.push_back(std::make_unique<ShardWorker>());
  }
  for (std::size_t i = 0; i < shards; ++i) {
    server->workers_[i]->thread =
        std::thread([srv = server.get(), i] { srv->worker_loop(i); });
  }
  if (options.commit_mode == KvServerOptions::CommitMode::kGroup) {
    server->co_thread_ =
        std::thread([srv = server.get()] { srv->coordinator_loop(); });
  }
  server->loop_thread_ =
      std::thread([srv = server.get()] { srv->event_loop(); });

  PAX_LOG_INFO("paxkv serving on %s:%u (%zu shards, %s commit)",
               options.bind_address.c_str(), server->port_, shards,
               commit_mode_name(options.commit_mode));
  return server;
}

Status KvServer::setup_listener(const KvServerOptions& options) {
  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return io_error("socket failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("bad bind address: " + options.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return io_error(std::string("bind failed: ") + std::strerror(errno));
  }
  if (listen(listen_fd_, 128) < 0) return io_error("listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    return io_error("getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
  return Status::ok();
}

KvServer::~KvServer() { stop(); }

void KvServer::stop() {
  if (stopped_) return;
  stopped_ = true;

  // Workers first: no new write acks get parked after they exit.
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Coordinator flushes any still-parked acks in a final wave, then exits.
  if (co_thread_.joinable()) {
    {
      std::lock_guard lock(co_mu_);
      co_stop_ = true;
    }
    co_cv_.notify_all();
    co_thread_.join();
  }
  stop_.store(true, std::memory_order_release);
  wake_loop();
  if (loop_thread_.joinable()) loop_thread_.join();

  for (auto& [id, conn] : conns_) {
    (void)id;
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

void KvServer::wake_loop() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void KvServer::event_loop() {
  std::array<epoll_event, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const int n =
        epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                   /*timeout_ms=*/100);
    if (n < 0) {
      if (errno == EINTR) continue;
      PAX_LOG_ERROR("epoll_wait: %s", std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (id == kListenerId) {
        accept_ready();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        drain_completions();
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(id);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && !conn_writable(conn)) continue;
      if ((ev & EPOLLIN) != 0) conn_readable(conn);
    }
  }
}

void KvServer::accept_ready() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;  // per-connection hiccup: keep draining the backlog
      }
      // Persistent failure (EMFILE/ENFILE/ENOMEM/...): the level-triggered
      // listener would make epoll_wait spin at 100% CPU. Deregister it;
      // close_conn re-arms once a connection frees an fd.
      PAX_LOG_ERROR("accept4: %s; pausing accepts", std::strerror(errno));
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr) == 0) {
        accepts_paused_ = true;
      }
      return;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    conns_accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void KvServer::conn_readable(Conn& conn) {
  const std::uint64_t id = conn.id;
  std::byte buf[64 << 10];
  for (;;) {
    if (conn.paused_read) return;  // in-flight cap reached mid-loop
    const ssize_t n = recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_conn(id);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(id);
      return;
    }
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    conn.parser.feed(buf, static_cast<std::size_t>(n));
    for (;;) {
      auto req = conn.parser.next_request();
      if (!req.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_conn(id);
        return;
      }
      if (!req.value().has_value()) break;
      // A STATS request flushes inline and may close the connection on a
      // send() error — stop immediately rather than touch a freed Conn.
      if (!handle_request(conn, *req.value())) return;
    }
    if (conn.inflight.size() >= options_.max_inflight_per_conn &&
        !conn.paused_read) {
      conn.paused_read = true;
      update_epoll(conn);
    }
  }
}

bool KvServer::handle_request(Conn& conn, const Request& req) {
  const std::uint64_t seq = conn.next_seq++;
  conn.inflight.emplace_back();
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (req.op == OpCode::kStats) {
    stats_requests_.fetch_add(1, std::memory_order_relaxed);
    Pending& slot = conn.inflight.back();
    append_response(slot.resp, RespStatus::kOk, stats_json());
    slot.ready = true;
    return flush_conn(conn);
  }

  Op op;
  op.conn_id = conn.id;
  op.seq = seq;
  op.op = req.op;
  op.key.assign(req.key);
  op.value.assign(req.value);

  ShardWorker& worker = *workers_[store_->shard_for(req.key)];
  {
    std::lock_guard lock(worker.mu);
    worker.queue.push_back(std::move(op));
  }
  worker.cv.notify_one();
  return true;
}

bool KvServer::conn_writable(Conn& conn) { return flush_conn(conn); }

bool KvServer::flush_conn(Conn& conn) {
  // Move the ready prefix of the in-flight window into the output buffer —
  // responses leave in request order, whatever order shards finished in.
  while (!conn.inflight.empty() && conn.inflight.front().ready) {
    Pending& front = conn.inflight.front();
    conn.out.insert(conn.out.end(), front.resp.begin(), front.resp.end());
    conn.inflight.pop_front();
    ++conn.base_seq;
  }

  while (conn.out_off < conn.out.size()) {
    const ssize_t n = send(conn.fd, conn.out.data() + conn.out_off,
                           conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn.id);
      return false;
    }
    conn.out_off += static_cast<std::size_t>(n);
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  }

  const bool want_write = conn.out_off < conn.out.size();
  const bool pause = conn.inflight.size() >= options_.max_inflight_per_conn;
  if (want_write != conn.want_write || pause != conn.paused_read) {
    conn.want_write = want_write;
    conn.paused_read = pause;
    update_epoll(conn);
  }
  return true;
}

void KvServer::update_epoll(Conn& conn) {
  epoll_event ev{};
  ev.events = EPOLLRDHUP;
  if (!conn.paused_read) ev.events |= EPOLLIN;
  if (conn.want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = conn.id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void KvServer::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second->fd);
  conns_.erase(it);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
  if (accepts_paused_) {
    // An fd just freed up; resume accepting.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) == 0) {
      accepts_paused_ = false;
    }
  }
}

void KvServer::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard lock(comp_mu_);
    batch.swap(completions_);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died with ops in flight
    Conn& conn = *it->second;
    const std::uint64_t idx = c.seq - conn.base_seq;
    PAX_CHECK_MSG(idx < conn.inflight.size(),
                  "completion outside the in-flight window");
    Pending& slot = conn.inflight[static_cast<std::size_t>(idx)];
    slot.resp = std::move(c.resp);
    slot.ready = true;
  }
  // One flush pass per drained connection set (flushing per completion
  // would re-walk the deque needlessly; ready-prefix flushing is cheap).
  // flush_conn may close_conn (erase from conns_), so collect the ids
  // first and re-look each one up rather than iterate conns_ directly.
  std::vector<std::uint64_t> to_flush;
  to_flush.reserve(conns_.size());
  for (auto& [id, conn] : conns_) {
    if (!conn->inflight.empty() && conn->inflight.front().ready) {
      to_flush.push_back(id);
    }
  }
  for (const std::uint64_t id : to_flush) {
    auto it = conns_.find(id);
    if (it != conns_.end()) flush_conn(*it->second);
  }
}

void KvServer::complete(Completion completion) {
  {
    std::lock_guard lock(comp_mu_);
    completions_.push_back(std::move(completion));
  }
  wake_loop();
}

void KvServer::worker_loop(std::size_t shard) {
  ShardWorker& worker = *workers_[shard];
  const bool independent =
      options_.commit_mode == KvServerOptions::CommitMode::kIndependent;
  const bool group =
      options_.commit_mode == KvServerOptions::CommitMode::kGroup;

  std::unique_lock lock(worker.mu);
  for (;;) {
    worker.cv.wait(lock,
                   [&worker] { return worker.stop || !worker.queue.empty(); });
    if (worker.queue.empty()) {
      if (worker.stop) return;
      continue;
    }
    std::deque<Op> batch;
    batch.swap(worker.queue);
    lock.unlock();

    std::vector<Completion> deferred;
    std::vector<Completion> immediate;
    for (const Op& op : batch) {
      execute_op(shard, op, group || independent ? &deferred : nullptr);
      // execute_op appends to `deferred` only for acked writes in durable
      // modes; everything else lands on the completion queue right here.
      (void)immediate;
    }

    if (!deferred.empty()) {
      if (independent) {
        // Per-shard commit: this shard alone, one log-flush round per
        // worker batch. The group-commit baseline.
        auto committed = store_->group().commit_one(shard);
        if (!committed.ok()) {
          for (Completion& c : deferred) {
            c.resp.clear();
            append_response(c.resp, RespStatus::kError);
          }
        }
        {
          std::lock_guard clock(comp_mu_);
          for (Completion& c : deferred) {
            completions_.push_back(std::move(c));
          }
        }
        wake_loop();
      } else {
        // Group mode: park the acks with the coordinator; the next wave
        // releases them.
        std::lock_guard glock(co_mu_);
        for (Completion& c : deferred) {
          parked_writes_.push_back(std::move(c));
        }
        co_cv_.notify_one();
      }
    }
    lock.lock();
  }
}

void KvServer::execute_op(std::size_t shard, const Op& op,
                          std::vector<Completion>* deferred_writes) {
  (void)shard;
  Completion c;
  c.conn_id = op.conn_id;
  c.seq = op.seq;
  bool durable_write = false;

  switch (op.op) {
    case OpCode::kGet: {
      gets_.fetch_add(1, std::memory_order_relaxed);
      std::string value;
      if (store_->get(op.key, &value)) {
        get_hits_.fetch_add(1, std::memory_order_relaxed);
        append_response(c.resp, RespStatus::kOk, value);
      } else {
        append_response(c.resp, RespStatus::kNotFound);
      }
      break;
    }
    case OpCode::kPut: {
      puts_.fetch_add(1, std::memory_order_relaxed);
      store_->put(op.key, op.value);
      append_response(c.resp, RespStatus::kOk);
      durable_write = true;
      break;
    }
    case OpCode::kDel: {
      dels_.fetch_add(1, std::memory_order_relaxed);
      const bool removed = store_->erase(op.key);
      append_response(c.resp,
                      removed ? RespStatus::kOk : RespStatus::kNotFound);
      // A miss mutated nothing — nothing to make durable before the ack.
      durable_write = removed;
      break;
    }
    case OpCode::kStats:
      // Handled on the event loop; a shard worker never sees it.
      append_response(c.resp, RespStatus::kBadRequest);
      break;
  }

  if (durable_write && deferred_writes != nullptr) {
    deferred_writes->push_back(std::move(c));
  } else {
    complete(std::move(c));
  }
}

void KvServer::coordinator_loop() {
  std::unique_lock lock(co_mu_);
  for (;;) {
    if (parked_writes_.empty()) {
      co_cv_.wait(lock,
                  [this] { return co_stop_ || !parked_writes_.empty(); });
    } else {
      // Cadence: fire when the pending-ack threshold is reached, or after
      // group_interval with any ack parked — whichever comes first.
      co_cv_.wait_for(lock, options_.group_interval, [this] {
        return co_stop_ || parked_writes_.size() >= options_.group_max_ops;
      });
    }
    if (parked_writes_.empty()) {
      if (co_stop_) return;
      continue;
    }
    std::vector<Completion> batch;
    batch.swap(parked_writes_);
    lock.unlock();

    // One wave covers every shard these acks touched (and any other shard
    // dirtied meanwhile): a single cross-shard log-flush round.
    auto wave = store_->group().commit_wave();
    if (!wave.ok()) {
      for (Completion& c : batch) {
        c.resp.clear();
        append_response(c.resp, RespStatus::kError);
      }
    }
    {
      std::lock_guard clock(comp_mu_);
      for (Completion& c : batch) completions_.push_back(std::move(c));
    }
    wake_loop();

    lock.lock();
    if (co_stop_ && parked_writes_.empty()) return;
  }
}

KvServerStats KvServer::stats() const {
  KvServerStats s;
  s.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
  s.conns_closed = conns_closed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.get_hits = get_hits_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.dels = dels_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

std::string KvServer::stats_json() const {
  const KvServerStats s = stats();
  const libpax::GroupCommitStats g = store_->group().stats();
  const std::uint64_t flushes = store_->total_log_flushes();
  const std::uint64_t acked = g.wave_ops + g.independent_ops;

  std::string out;
  out.reserve(2048);
  out += "{\n";
  appendf(out, "  \"commit_mode\": \"%s\",\n",
          commit_mode_name(options_.commit_mode));
  appendf(out, "  \"shards\": %zu,\n", store_->shard_count());
  appendf(out, "  \"log_flushes_total\": %llu,\n",
          static_cast<unsigned long long>(flushes));
  appendf(out, "  \"acked_write_ops\": %llu,\n",
          static_cast<unsigned long long>(acked));
  appendf(out, "  \"log_flushes_per_acked_op\": %.6f,\n",
          acked == 0 ? 0.0
                     : static_cast<double>(flushes) /
                           static_cast<double>(acked));
  appendf(out,
          "  \"server\": {\"conns_accepted\": %llu, \"conns_closed\": %llu, "
          "\"requests\": %llu, \"gets\": %llu, \"get_hits\": %llu, "
          "\"puts\": %llu, \"dels\": %llu, \"stats_requests\": %llu, "
          "\"protocol_errors\": %llu, \"bytes_in\": %llu, "
          "\"bytes_out\": %llu},\n",
          static_cast<unsigned long long>(s.conns_accepted),
          static_cast<unsigned long long>(s.conns_closed),
          static_cast<unsigned long long>(s.requests),
          static_cast<unsigned long long>(s.gets),
          static_cast<unsigned long long>(s.get_hits),
          static_cast<unsigned long long>(s.puts),
          static_cast<unsigned long long>(s.dels),
          static_cast<unsigned long long>(s.stats_requests),
          static_cast<unsigned long long>(s.protocol_errors),
          static_cast<unsigned long long>(s.bytes_in),
          static_cast<unsigned long long>(s.bytes_out));
  appendf(out,
          "  \"group_commit\": {\"waves\": %llu, \"empty_waves\": %llu, "
          "\"wave_shard_seals\": %llu, \"wave_ops\": %llu, "
          "\"max_wave_shards\": %llu, \"max_wave_ops\": %llu, "
          "\"independent_commits\": %llu, \"independent_ops\": %llu},\n",
          static_cast<unsigned long long>(g.waves),
          static_cast<unsigned long long>(g.empty_waves),
          static_cast<unsigned long long>(g.wave_shard_seals),
          static_cast<unsigned long long>(g.wave_ops),
          static_cast<unsigned long long>(g.max_wave_shards),
          static_cast<unsigned long long>(g.max_wave_ops),
          static_cast<unsigned long long>(g.independent_commits),
          static_cast<unsigned long long>(g.independent_ops));
  out += "  \"shard_stats\": [\n";
  for (std::size_t i = 0; i < store_->shard_count(); ++i) {
    auto& rt = const_cast<KvStore*>(store_.get())->shard_runtime(i);
    const libpax::RuntimeStats r = rt.stats();
    const libpax::SyncStats sync = rt.sync_stats();
    const libpax::PipelineStats pipe = rt.pipeline_stats();
    const device::UndoLoggerStats log = rt.device().log_stats();
    appendf(out,
            "    {\"shard\": %zu, \"committed_epoch\": %llu, "
            "\"persists\": %llu, \"pages_diffed\": %llu, "
            "\"device_calls\": %llu, \"sync_batches\": %llu,\n",
            i, static_cast<unsigned long long>(rt.committed_epoch()),
            static_cast<unsigned long long>(r.persists),
            static_cast<unsigned long long>(r.pages_diffed),
            static_cast<unsigned long long>(r.device_calls),
            static_cast<unsigned long long>(r.sync_batches));
    appendf(out,
            "     \"sync\": {\"pages_scanned\": %llu, \"lines_diffed\": "
            "%llu, \"lines_skipped\": %llu, \"lines_synced\": %llu, "
            "\"tuner_decisions\": %llu, \"last_batch_lines\": %zu, "
            "\"last_diff_workers\": %u},\n",
            static_cast<unsigned long long>(sync.pages_scanned),
            static_cast<unsigned long long>(sync.lines_diffed),
            static_cast<unsigned long long>(sync.lines_skipped),
            static_cast<unsigned long long>(sync.lines_synced),
            static_cast<unsigned long long>(sync.tuner_decisions),
            sync.last_batch_lines, sync.last_diff_workers);
    appendf(out,
            "     \"pipeline\": {\"async_persists\": %llu, "
            "\"jobs_drained\": %llu, \"backpressure_waits\": %llu},\n",
            static_cast<unsigned long long>(pipe.async_persists),
            static_cast<unsigned long long>(pipe.jobs_drained),
            static_cast<unsigned long long>(pipe.backpressure_waits));
    appendf(out,
            "     \"log\": {\"flushes\": %llu, \"records\": %llu, "
            "\"ring_appends\": %llu, \"ring_full_stalls\": %llu}}%s\n",
            static_cast<unsigned long long>(log.flushes),
            static_cast<unsigned long long>(log.records),
            static_cast<unsigned long long>(log.ring_appends),
            static_cast<unsigned long long>(log.ring_full_stalls),
            i + 1 < store_->shard_count() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace pax::kv
