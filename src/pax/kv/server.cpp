#include "pax/kv/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <pthread.h>
#include <sched.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <utility>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"
#include "pax/kv/event_backend.hpp"

namespace pax::kv {

namespace {

constexpr std::size_t kRecvBufBytes = 16 << 10;

const char* commit_mode_name(KvServerOptions::CommitMode mode) {
  switch (mode) {
    case KvServerOptions::CommitMode::kGroup:
      return "group";
    case KvServerOptions::CommitMode::kIndependent:
      return "independent";
    case KvServerOptions::CommitMode::kVolatile:
      return "volatile";
  }
  return "?";
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

void pin_thread_to(unsigned cpu) {
  const long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % static_cast<unsigned>(ncpu), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

std::unique_ptr<EventBackend> make_backend(KvServerOptions::Backend kind) {
  switch (kind) {
    case KvServerOptions::Backend::kEpoll:
      return make_epoll_backend();
    case KvServerOptions::Backend::kIoUring:
      return make_io_uring_backend();
  }
  return nullptr;
}

}  // namespace

bool KvServer::io_uring_supported() { return io_uring_available(); }

Result<std::unique_ptr<KvServer>> KvServer::start(
    const KvServerOptions& options) {
  auto server = std::unique_ptr<KvServer>(new KvServer());
  server->options_ = options;
  if (server->options_.loop_threads == 0) server->options_.loop_threads = 1;

  auto store = KvStore::create_in_memory(options.store);
  if (!store.ok()) return store.status();
  server->store_ = std::move(store).value();

  PAX_RETURN_IF_ERROR(server->setup_listeners(server->options_));

  const std::size_t shards = server->store_->shard_count();
  server->workers_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    server->workers_.push_back(std::make_unique<ShardWorker>());
  }
  for (std::size_t i = 0; i < shards; ++i) {
    server->workers_[i]->thread =
        std::thread([srv = server.get(), i] { srv->worker_loop(i); });
  }
  if (options.commit_mode == KvServerOptions::CommitMode::kGroup) {
    server->co_thread_ =
        std::thread([srv = server.get()] { srv->coordinator_loop(); });
  }
  for (auto& loop : server->loops_) {
    loop->thread = std::thread(
        [srv = server.get(), lp = loop.get()] { srv->event_loop(*lp); });
  }

  PAX_LOG_INFO("paxkv serving on %s:%u (%zu shards, %s commit, %zu %s loops)",
               options.bind_address.c_str(), server->port_, shards,
               commit_mode_name(options.commit_mode), server->loops_.size(),
               server->loops_[0]->backend->name());
  return server;
}

Status KvServer::setup_listeners(const KvServerOptions& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("bad bind address: " + options.bind_address);
  }

  loops_.reserve(options.loop_threads);
  for (std::size_t i = 0; i < options.loop_threads; ++i) {
    auto loop = std::make_unique<EventLoop>();
    loop->index = i;

    loop->listen_fd =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (loop->listen_fd < 0) return io_error("socket failed");
    const int one = 1;
    setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    // SO_REUSEPORT on every listener: the kernel hashes incoming
    // connections across the loops' accept queues.
    setsockopt(loop->listen_fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));

    // Loop 0 may bind port 0 (ephemeral); the rest bind the resolved port.
    addr.sin_port = htons(i == 0 ? options.port : port_);
    if (bind(loop->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      return io_error(std::string("bind failed: ") + std::strerror(errno));
    }
    if (listen(loop->listen_fd, 128) < 0) return io_error("listen failed");
    if (i == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (getsockname(loop->listen_fd, reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0) {
        return io_error("getsockname failed");
      }
      port_ = ntohs(bound.sin_port);
    }

    loop->wake_fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->wake_fd < 0) return io_error("eventfd failed");

    loop->backend = make_backend(options.backend);
    if (loop->backend == nullptr) {
      return failed_precondition(
          "io_uring backend unavailable (build without PAX_WITH_LIBURING "
          "or kernel lacks required ops)");
    }
    PAX_RETURN_IF_ERROR(loop->backend->init(loop->listen_fd, loop->wake_fd));
    backend_name_ = loop->backend->name();
    loops_.push_back(std::move(loop));
  }
  return Status::ok();
}

KvServer::~KvServer() { stop(); }

void KvServer::stop() {
  if (stopped_) return;
  stopped_ = true;

  // Workers first: no new write acks get parked after they exit.
  for (auto& worker : workers_) {
    {
      std::lock_guard lock(worker->mu);
      worker->stop = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  // Coordinator flushes any still-parked acks in a final wave, then exits.
  if (co_thread_.joinable()) {
    {
      std::lock_guard lock(co_mu_);
      co_stop_ = true;
    }
    co_cv_.notify_all();
    co_thread_.join();
  }
  stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_) wake_loop(*loop);
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) shutdown_loop(*loop);
  loops_.clear();
}

void KvServer::shutdown_loop(EventLoop& loop) {
  // Close every live connection through the backend so in-kernel I/O
  // (io_uring SQEs holding pointers into conn buffers) quiesces before the
  // Conns are destroyed. The loop thread has exited; single-threaded now.
  std::vector<std::uint64_t> ids;
  ids.reserve(loop.conns.size());
  for (auto& [id, conn] : loop.conns) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = loop.conns.find(id);
    if (it == loop.conns.end()) continue;
    std::unique_ptr<Conn> conn = std::move(it->second);
    loop.conns.erase(it);
    if (!loop.backend->remove_conn(id, conn->fd)) {
      loop.dying.emplace(id, std::move(conn));
    }
  }
  std::array<BackendEvent, 64> events;
  for (int spin = 0; !loop.dying.empty() && spin < 200; ++spin) {
    const std::size_t n = loop.backend->wait(events, /*timeout_ms=*/10);
    for (std::size_t i = 0; i < n; ++i) {
      if (events[i].kind == BackendEvent::Kind::kClosed) {
        loop.dying.erase(events[i].conn_id);
      }
    }
  }
  if (!loop.dying.empty()) {
    PAX_LOG_ERROR("loop %zu: %zu connections failed to quiesce",
                  loop.index, loop.dying.size());
    for (auto& [id, conn] : loop.dying) conn.release();  // leak, don't UAF
    loop.dying.clear();
  }
  loop.backend.reset();
  if (loop.wake_fd >= 0) ::close(loop.wake_fd);
  if (loop.listen_fd >= 0) ::close(loop.listen_fd);
  loop.wake_fd = loop.listen_fd = -1;
}

void KvServer::wake_loop(EventLoop& loop) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(loop.wake_fd, &one, sizeof(one));
}

void KvServer::event_loop(EventLoop& loop) {
  if (options_.pin_loops) {
    pin_thread_to(static_cast<unsigned>(loop.index));
  }
  std::array<BackendEvent, 64> events;
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = loop.backend->wait(events, /*timeout_ms=*/100);
    for (std::size_t i = 0; i < n; ++i) {
      const BackendEvent& ev = events[i];
      switch (ev.kind) {
        case BackendEvent::Kind::kAccepted:
          on_accepted(loop, ev.fd);
          break;
        case BackendEvent::Kind::kRecv:
          on_recv(loop, ev.conn_id, ev.result);
          break;
        case BackendEvent::Kind::kSend:
          on_send(loop, ev.conn_id, ev.result);
          break;
        case BackendEvent::Kind::kWake:
          drain_completions(loop);
          break;
        case BackendEvent::Kind::kHangup:
          close_conn(loop, ev.conn_id);
          break;
        case BackendEvent::Kind::kClosed:
          loop.dying.erase(ev.conn_id);
          loop.backend->resume_accepts();
          break;
        case BackendEvent::Kind::kAcceptPaused:
          // close_conn → resume_accepts() re-arms once an fd frees up.
          break;
      }
    }
  }
}

void KvServer::on_accepted(EventLoop& loop, int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = loop.next_conn_id++;
  conn->rbuf.resize(kRecvBufBytes);
  if (!loop.backend->add_conn(conn->id, fd).is_ok()) {
    ::close(fd);
    return;
  }
  Conn& ref = *conn;
  loop.conns.emplace(ref.id, std::move(conn));
  conns_accepted_.fetch_add(1, std::memory_order_relaxed);
  arm_recv(loop, ref);
}

void KvServer::arm_recv(EventLoop& loop, Conn& conn) {
  conn.recv_armed = true;
  loop.backend->arm_recv(conn.id, conn.fd, conn.rbuf.data(),
                         conn.rbuf.size());
}

void KvServer::on_recv(EventLoop& loop, std::uint64_t conn_id,
                       ssize_t result) {
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  Conn& conn = *it->second;
  conn.recv_armed = false;
  if (result <= 0) {
    close_conn(loop, conn_id);  // EOF or socket error
    return;
  }
  bytes_in_.fetch_add(static_cast<std::uint64_t>(result),
                      std::memory_order_relaxed);
  conn.parser.feed(conn.rbuf.data(), static_cast<std::size_t>(result));
  for (;;) {
    auto req = conn.parser.next_request();
    if (!req.ok()) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      close_conn(loop, conn_id);
      return;
    }
    if (!req.value().has_value()) break;
    if (!handle_request(loop, conn, *req.value())) return;
  }
  if (conn.inflight.size() >= options_.max_inflight_per_conn) {
    conn.paused_read = true;  // resume in try_flush once below the cap
    return;
  }
  arm_recv(loop, conn);
}

bool KvServer::handle_request(EventLoop& loop, Conn& conn,
                              const Request& req) {
  const std::uint64_t seq = conn.next_seq++;
  conn.inflight.emplace_back();
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (req.op == OpCode::kStats) {
    stats_requests_.fetch_add(1, std::memory_order_relaxed);
    Pending& slot = conn.inflight.back();
    append_response(slot.resp, RespStatus::kOk, stats_json());
    slot.ready = true;
    try_flush(loop, conn);
    return true;
  }

  Op op;
  op.loop = static_cast<std::uint32_t>(loop.index);
  op.conn_id = conn.id;
  op.seq = seq;
  op.op = req.op;
  op.key.assign(req.key);
  op.value.assign(req.value);

  ShardWorker& worker = *workers_[store_->shard_for(req.key)];
  {
    std::lock_guard lock(worker.mu);
    worker.queue.push_back(std::move(op));
  }
  worker.cv.notify_one();
  return true;
}

void KvServer::try_flush(EventLoop& loop, Conn& conn) {
  // While a send is armed the backend holds a pointer into conn.out — the
  // buffer must not grow or move. Newly-ready responses wait in their
  // in-flight slots until the send completes.
  if (conn.send_armed) return;

  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    // Move the ready prefix of the in-flight window into the output
    // buffer — responses leave in request order, whatever order shards
    // finished in.
    while (!conn.inflight.empty() && conn.inflight.front().ready) {
      Pending& front = conn.inflight.front();
      conn.out.insert(conn.out.end(), front.resp.begin(), front.resp.end());
      conn.inflight.pop_front();
      ++conn.base_seq;
    }
  }

  if (conn.paused_read &&
      conn.inflight.size() < options_.max_inflight_per_conn) {
    conn.paused_read = false;
    if (!conn.recv_armed) arm_recv(loop, conn);
  }

  if (conn.out_off < conn.out.size()) {
    conn.send_armed = true;
    loop.backend->arm_send(conn.id, conn.fd, conn.out.data() + conn.out_off,
                           conn.out.size() - conn.out_off);
  }
}

void KvServer::on_send(EventLoop& loop, std::uint64_t conn_id,
                       ssize_t result) {
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  Conn& conn = *it->second;
  conn.send_armed = false;
  if (result < 0) {
    close_conn(loop, conn_id);
    return;
  }
  bytes_out_.fetch_add(static_cast<std::uint64_t>(result),
                       std::memory_order_relaxed);
  conn.out_off += static_cast<std::size_t>(result);
  try_flush(loop, conn);
}

void KvServer::close_conn(EventLoop& loop, std::uint64_t conn_id) {
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  std::unique_ptr<Conn> conn = std::move(it->second);
  loop.conns.erase(it);
  conns_closed_.fetch_add(1, std::memory_order_relaxed);
  if (!loop.backend->remove_conn(conn_id, conn->fd)) {
    // In-kernel I/O still references conn's buffers; hold it until the
    // backend delivers kClosed.
    loop.dying.emplace(conn_id, std::move(conn));
    return;
  }
  loop.backend->resume_accepts();  // an fd just freed up (no-op otherwise)
}

void KvServer::drain_completions(EventLoop& loop) {
  std::vector<Completion> batch;
  {
    std::lock_guard lock(loop.comp_mu);
    batch.swap(loop.completions);
  }
  for (Completion& c : batch) {
    auto it = loop.conns.find(c.conn_id);
    if (it == loop.conns.end()) continue;  // connection died with ops in flight
    Conn& conn = *it->second;
    const std::uint64_t idx = c.seq - conn.base_seq;
    PAX_CHECK_MSG(idx < conn.inflight.size(),
                  "completion outside the in-flight window");
    Pending& slot = conn.inflight[static_cast<std::size_t>(idx)];
    slot.resp = std::move(c.resp);
    slot.ready = true;
  }
  // One flush pass per drained connection set (flushing per completion
  // would re-walk the deque needlessly; ready-prefix flushing is cheap).
  // try_flush cannot close a connection (errors surface as kSend
  // completions), but collect ids first anyway to keep iteration simple.
  std::vector<std::uint64_t> to_flush;
  to_flush.reserve(loop.conns.size());
  for (auto& [id, conn] : loop.conns) {
    if (!conn->inflight.empty() && conn->inflight.front().ready) {
      to_flush.push_back(id);
    }
  }
  for (const std::uint64_t id : to_flush) {
    auto it = loop.conns.find(id);
    if (it != loop.conns.end()) try_flush(loop, *it->second);
  }
}

void KvServer::post_completions(std::vector<Completion> batch) {
  if (batch.empty()) return;
  // Partition by originating loop; one queue append + one wake per loop.
  for (auto& loop : loops_) {
    bool any = false;
    {
      std::lock_guard lock(loop->comp_mu);
      for (Completion& c : batch) {
        if (c.loop == loop->index) {
          loop->completions.push_back(std::move(c));
          any = true;
        }
      }
    }
    if (any) wake_loop(*loop);
  }
}

void KvServer::worker_loop(std::size_t shard) {
  if (options_.pin_loops) {
    pin_thread_to(static_cast<unsigned>(options_.loop_threads + shard));
  }
  ShardWorker& worker = *workers_[shard];
  const bool independent =
      options_.commit_mode == KvServerOptions::CommitMode::kIndependent;
  const bool group =
      options_.commit_mode == KvServerOptions::CommitMode::kGroup;

  std::unique_lock lock(worker.mu);
  for (;;) {
    worker.cv.wait(lock,
                   [&worker] { return worker.stop || !worker.queue.empty(); });
    if (worker.queue.empty()) {
      if (worker.stop) return;
      continue;
    }
    std::deque<Op> batch;
    batch.swap(worker.queue);
    lock.unlock();

    // execute_op appends to `deferred` only for acked writes in durable
    // modes; everything else posts to its loop's completion queue inline.
    std::vector<Completion> deferred;
    for (const Op& op : batch) {
      execute_op(shard, op, group || independent ? &deferred : nullptr);
    }

    if (!deferred.empty()) {
      if (independent) {
        // Per-shard commit: this shard alone, one log-flush round per
        // worker batch. The group-commit baseline.
        auto committed = store_->group().commit_one(shard);
        if (!committed.ok()) {
          for (Completion& c : deferred) {
            c.resp.clear();
            append_response(c.resp, RespStatus::kError);
          }
        }
        post_completions(std::move(deferred));
      } else {
        // Group mode: park the acks with the coordinator; the next wave
        // releases them.
        std::lock_guard glock(co_mu_);
        for (Completion& c : deferred) {
          parked_writes_.push_back(std::move(c));
        }
        co_cv_.notify_one();
      }
    }
    lock.lock();
  }
}

void KvServer::execute_op(std::size_t shard, const Op& op,
                          std::vector<Completion>* deferred_writes) {
  (void)shard;
  Completion c;
  c.loop = op.loop;
  c.conn_id = op.conn_id;
  c.seq = op.seq;
  bool durable_write = false;

  switch (op.op) {
    case OpCode::kGet: {
      gets_.fetch_add(1, std::memory_order_relaxed);
      std::string value;
      if (store_->get(op.key, &value)) {
        get_hits_.fetch_add(1, std::memory_order_relaxed);
        append_response(c.resp, RespStatus::kOk, value);
      } else {
        append_response(c.resp, RespStatus::kNotFound);
      }
      break;
    }
    case OpCode::kPut: {
      puts_.fetch_add(1, std::memory_order_relaxed);
      store_->put(op.key, op.value);
      append_response(c.resp, RespStatus::kOk);
      durable_write = true;
      break;
    }
    case OpCode::kDel: {
      dels_.fetch_add(1, std::memory_order_relaxed);
      const bool removed = store_->erase(op.key);
      append_response(c.resp,
                      removed ? RespStatus::kOk : RespStatus::kNotFound);
      // A miss mutated nothing — nothing to make durable before the ack.
      durable_write = removed;
      break;
    }
    case OpCode::kStats:
      // Handled on the event loop; a shard worker never sees it.
      append_response(c.resp, RespStatus::kBadRequest);
      break;
  }

  if (durable_write && deferred_writes != nullptr) {
    deferred_writes->push_back(std::move(c));
  } else {
    std::vector<Completion> one;
    one.push_back(std::move(c));
    post_completions(std::move(one));
  }
}

void KvServer::coordinator_loop() {
  std::unique_lock lock(co_mu_);
  for (;;) {
    if (parked_writes_.empty()) {
      co_cv_.wait(lock,
                  [this] { return co_stop_ || !parked_writes_.empty(); });
    } else {
      // Cadence: fire when the pending-ack threshold is reached, or after
      // group_interval with any ack parked — whichever comes first.
      co_cv_.wait_for(lock, options_.group_interval, [this] {
        return co_stop_ || parked_writes_.size() >= options_.group_max_ops;
      });
    }
    if (parked_writes_.empty()) {
      if (co_stop_) return;
      continue;
    }
    std::vector<Completion> batch;
    batch.swap(parked_writes_);
    lock.unlock();

    // One wave covers every shard these acks touched (and any other shard
    // dirtied meanwhile): a single cross-shard log-flush round.
    auto wave = store_->group().commit_wave();
    if (!wave.ok()) {
      for (Completion& c : batch) {
        c.resp.clear();
        append_response(c.resp, RespStatus::kError);
      }
    }
    post_completions(std::move(batch));

    lock.lock();
    if (co_stop_ && parked_writes_.empty()) return;
  }
}

const char* KvServer::backend_name() const { return backend_name_; }

KvServerStats KvServer::stats() const {
  KvServerStats s;
  s.conns_accepted = conns_accepted_.load(std::memory_order_relaxed);
  s.conns_closed = conns_closed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.get_hits = get_hits_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  s.dels = dels_.load(std::memory_order_relaxed);
  s.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

std::string KvServer::stats_json() const {
  const KvServerStats s = stats();
  const libpax::GroupCommitStats g = store_->group().stats();
  const std::uint64_t flushes = store_->total_log_flushes();
  const std::uint64_t acked = g.wave_ops + g.independent_ops;

  std::string out;
  out.reserve(2048);
  out += "{\n";
  appendf(out, "  \"commit_mode\": \"%s\",\n",
          commit_mode_name(options_.commit_mode));
  appendf(out, "  \"backend\": \"%s\",\n", backend_name());
  appendf(out, "  \"loops\": %zu,\n", options_.loop_threads);
  appendf(out, "  \"shards\": %zu,\n", store_->shard_count());
  appendf(out, "  \"log_flushes_total\": %llu,\n",
          static_cast<unsigned long long>(flushes));
  appendf(out, "  \"acked_write_ops\": %llu,\n",
          static_cast<unsigned long long>(acked));
  appendf(out, "  \"log_flushes_per_acked_op\": %.6f,\n",
          acked == 0 ? 0.0
                     : static_cast<double>(flushes) /
                           static_cast<double>(acked));
  appendf(out,
          "  \"server\": {\"conns_accepted\": %llu, \"conns_closed\": %llu, "
          "\"requests\": %llu, \"gets\": %llu, \"get_hits\": %llu, "
          "\"puts\": %llu, \"dels\": %llu, \"stats_requests\": %llu, "
          "\"protocol_errors\": %llu, \"bytes_in\": %llu, "
          "\"bytes_out\": %llu},\n",
          static_cast<unsigned long long>(s.conns_accepted),
          static_cast<unsigned long long>(s.conns_closed),
          static_cast<unsigned long long>(s.requests),
          static_cast<unsigned long long>(s.gets),
          static_cast<unsigned long long>(s.get_hits),
          static_cast<unsigned long long>(s.puts),
          static_cast<unsigned long long>(s.dels),
          static_cast<unsigned long long>(s.stats_requests),
          static_cast<unsigned long long>(s.protocol_errors),
          static_cast<unsigned long long>(s.bytes_in),
          static_cast<unsigned long long>(s.bytes_out));
  appendf(out,
          "  \"group_commit\": {\"waves\": %llu, \"empty_waves\": %llu, "
          "\"wave_shard_seals\": %llu, \"wave_ops\": %llu, "
          "\"max_wave_shards\": %llu, \"max_wave_ops\": %llu, "
          "\"independent_commits\": %llu, \"independent_ops\": %llu},\n",
          static_cast<unsigned long long>(g.waves),
          static_cast<unsigned long long>(g.empty_waves),
          static_cast<unsigned long long>(g.wave_shard_seals),
          static_cast<unsigned long long>(g.wave_ops),
          static_cast<unsigned long long>(g.max_wave_shards),
          static_cast<unsigned long long>(g.max_wave_ops),
          static_cast<unsigned long long>(g.independent_commits),
          static_cast<unsigned long long>(g.independent_ops));
  out += "  \"shard_stats\": [\n";
  for (std::size_t i = 0; i < store_->shard_count(); ++i) {
    auto& rt = const_cast<KvStore*>(store_.get())->shard_runtime(i);
    const libpax::RuntimeStats r = rt.stats();
    const libpax::SyncStats sync = rt.sync_stats();
    const libpax::PipelineStats pipe = rt.pipeline_stats();
    const device::UndoLoggerStats log = rt.device().log_stats();
    appendf(out,
            "    {\"shard\": %zu, \"committed_epoch\": %llu, "
            "\"persists\": %llu, \"pages_diffed\": %llu, "
            "\"device_calls\": %llu, \"sync_batches\": %llu,\n",
            i, static_cast<unsigned long long>(rt.committed_epoch()),
            static_cast<unsigned long long>(r.persists),
            static_cast<unsigned long long>(r.pages_diffed),
            static_cast<unsigned long long>(r.device_calls),
            static_cast<unsigned long long>(r.sync_batches));
    appendf(out,
            "     \"sync\": {\"pages_scanned\": %llu, \"lines_diffed\": "
            "%llu, \"lines_skipped\": %llu, \"lines_synced\": %llu, "
            "\"tuner_decisions\": %llu, \"last_batch_lines\": %zu, "
            "\"last_diff_workers\": %u},\n",
            static_cast<unsigned long long>(sync.pages_scanned),
            static_cast<unsigned long long>(sync.lines_diffed),
            static_cast<unsigned long long>(sync.lines_skipped),
            static_cast<unsigned long long>(sync.lines_synced),
            static_cast<unsigned long long>(sync.tuner_decisions),
            sync.last_batch_lines, sync.last_diff_workers);
    appendf(out,
            "     \"pipeline\": {\"async_persists\": %llu, "
            "\"jobs_drained\": %llu, \"backpressure_waits\": %llu},\n",
            static_cast<unsigned long long>(pipe.async_persists),
            static_cast<unsigned long long>(pipe.jobs_drained),
            static_cast<unsigned long long>(pipe.backpressure_waits));
    appendf(out,
            "     \"log\": {\"flushes\": %llu, \"records\": %llu, "
            "\"ring_appends\": %llu, \"ring_full_stalls\": %llu}}%s\n",
            static_cast<unsigned long long>(log.flushes),
            static_cast<unsigned long long>(log.records),
            static_cast<unsigned long long>(log.ring_appends),
            static_cast<unsigned long long>(log.ring_full_stalls),
            i + 1 < store_->shard_count() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace pax::kv
