// LatencyHistogram — HDR-style log-linear latency histogram.
//
// Fixed 2048-bucket layout: values below 32 ns get exact buckets; above
// that, each power-of-two range is split into 32 linear sub-buckets (5
// significant bits), bounding relative quantization error at ~3% across
// the full ns..minutes range. Recording is O(1) with no allocation, so
// load-generator threads record on the request path and merge per-thread
// histograms afterwards (tools/paxkv_loadgen.cpp, bench/abl_paxkv.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace pax::kv {

class LatencyHistogram {
 public:
  void record(std::uint64_t ns) {
    ++buckets_[bucket_for(ns)];
    ++count_;
    sum_ns_ += ns;
    max_ns_ = std::max(max_ns_, ns);
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    max_ns_ = std::max(max_ns_, other.max_ns_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) /
                                   static_cast<double>(count_);
  }

  /// Value (ns, bucket midpoint) at quantile `q` in [0, 1]; the recorded
  /// maximum for q >= 1. 0 when empty.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q >= 1.0) return max_ns_;
    if (q < 0.0) q = 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return bucket_value(i);
    }
    return max_ns_;
  }

 private:
  static constexpr std::size_t kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::size_t kSub = 1u << kSubBits;
  static constexpr std::size_t kBuckets = 2048;

  static std::size_t bucket_for(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;  // msb >= 5 here
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    const std::size_t idx = kSub + (msb - kSubBits) * kSub + sub;
    return std::min(idx, kBuckets - 1);
  }

  static std::uint64_t bucket_value(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t octave = (idx - kSub) / kSub;
    const std::uint64_t sub = (idx - kSub) % kSub;
    const std::uint64_t lower = (kSub + sub) << octave;
    return lower + ((1ull << octave) >> 1);  // midpoint of the sub-bucket
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace pax::kv
