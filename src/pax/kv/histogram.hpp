// LatencyHistogram — HDR-style log-linear latency histogram.
//
// Fixed log-linear layout: values below 32 ns get exact buckets; above
// that, each power-of-two range is split into 32 linear sub-buckets (5
// significant bits), bounding relative quantization error at ~3% up to
// the trackable ceiling (2^42 - 1 ns ≈ 73 minutes). Values above the
// ceiling land in an explicit overflow bucket that remembers its own
// minimum, so a tail quantile falling there reports a true lower bound
// (">= overflow_min") instead of silently clamping into the last regular
// bucket; the exact maximum is always tracked separately. Recording is
// O(1) with no allocation, so load-generator threads record on the
// request path and merge per-thread histograms afterwards
// (tools/paxkv_loadgen.cpp, bench/abl_paxkv.cpp).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>

namespace pax::kv {

class LatencyHistogram {
 public:
  /// Largest value the regular buckets resolve; above this, the overflow
  /// bucket takes over.
  static constexpr std::uint64_t kTrackableMaxNs = (1ull << 42) - 1;

  void record(std::uint64_t ns) {
    if (ns > kTrackableMaxNs) {
      ++overflow_count_;
      overflow_min_ns_ = std::min(overflow_min_ns_, ns);
    } else {
      ++buckets_[bucket_for(ns)];
    }
    ++count_;
    sum_ns_ += ns;
    max_ns_ = std::max(max_ns_, ns);
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ns_ += other.sum_ns_;
    max_ns_ = std::max(max_ns_, other.max_ns_);
    overflow_count_ += other.overflow_count_;
    overflow_min_ns_ = std::min(overflow_min_ns_, other.overflow_min_ns_);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_ns() const { return max_ns_; }

  /// Samples above kTrackableMaxNs, and the smallest of them (0 if none).
  std::uint64_t overflow_count() const { return overflow_count_; }
  std::uint64_t overflow_min_ns() const {
    return overflow_count_ == 0 ? 0 : overflow_min_ns_;
  }

  double mean_ns() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) /
                                   static_cast<double>(count_);
  }

  /// Value (ns, bucket midpoint) at quantile `q` in [0, 1]; the recorded
  /// maximum for q >= 1. A rank landing in the overflow bucket reports the
  /// smallest overflowed sample — a ">= that value" lower bound, never an
  /// understated clamp. 0 when empty.
  std::uint64_t percentile(double q) const {
    if (count_ == 0) return 0;
    if (q >= 1.0) return max_ns_;
    if (q < 0.0) q = 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > rank) return bucket_value(i);
    }
    return overflow_min_ns();  // rank is among the overflowed samples
  }

 private:
  static constexpr std::size_t kSubBits = 5;  // 32 sub-buckets per octave
  static constexpr std::size_t kSub = 1u << kSubBits;
  static constexpr unsigned kMaxMsb = 41;  // msb of kTrackableMaxNs
  static constexpr std::size_t kBuckets =
      kSub + (kMaxMsb - kSubBits + 1) * kSub;

  static std::size_t bucket_for(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;  // msb in [5, kMaxMsb] here
    const auto sub = static_cast<std::size_t>((v >> shift) & (kSub - 1));
    return kSub + (msb - kSubBits) * kSub + sub;
  }

  static std::uint64_t bucket_value(std::size_t idx) {
    if (idx < kSub) return idx;
    const std::size_t octave = (idx - kSub) / kSub;
    const std::uint64_t sub = (idx - kSub) % kSub;
    const std::uint64_t lower = (kSub + sub) << octave;
    return lower + ((1ull << octave) >> 1);  // midpoint of the sub-bucket
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t max_ns_ = 0;
  std::uint64_t overflow_count_ = 0;
  std::uint64_t overflow_min_ns_ = std::numeric_limits<std::uint64_t>::max();
};

}  // namespace pax::kv
