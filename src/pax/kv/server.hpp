// KvServer — the PaxKV network serving frontend.
//
// N event-loop threads (loop_threads) each own an SO_REUSEPORT listener,
// a wake eventfd, and a disjoint set of connections; the kernel spreads
// incoming connections across the listeners. M shard workers — shared by
// every loop — own the data plane; an optional commit coordinator owns
// durability. The request path:
//
//   socket bytes → FrameParser → per-connection in-flight slot (responses
//   are sent strictly in request order) → the owning shard's dispatch
//   queue → shard worker executes against KvStore → completion (response
//   bytes) flows back to the ORIGINATING loop over that loop's MPSC queue
//   + eventfd wake → ordered prefix of ready responses is flushed to the
//   socket.
//
// There is no cross-loop connection state: a connection is born, served,
// and destroyed on one loop, so the hot path takes no lock that another
// loop contends on (the per-loop completion queue is the only
// producer/consumer handoff). Each loop drives its sockets through an
// EventBackend (event_backend.hpp): level-triggered epoll with direct
// syscalls, or an io_uring submission path that batches every staged
// recv/send SQE into one submit_and_wait per iteration — selected at
// runtime via KvServerOptions::backend, byte-identical protocol behavior
// either way. pin_loops pins loop i to CPU i and shard worker j to CPU
// loop_threads + j (mod the CPU count), so loops and workers stop
// migrating on multi-core hosts.
//
// Per-connection pipelining falls out of the in-flight deque: a client may
// write any number of request frames before reading; the server caps the
// in-flight window (max_inflight_per_conn) by not re-arming the receive —
// TCP back-pressure does the rest.
//
// ── Durability: when is a write acknowledged? ─────────────────────────────
//
// GETs (and missed DELs) complete as soon as the shard worker executes
// them: they read the latest applied value. Successful PUT/DEL responses
// are governed by the commit mode:
//
//   kGroup        cross-shard epoch group commit. Writes are applied
//                 immediately but their responses are parked with the
//                 coordinator; the coordinator accumulates dirty shards
//                 and, every group_interval (or sooner at group_max_ops
//                 pending writes), issues ONE commit wave — one
//                 persist_async() per dirty shard, drains overlapping on
//                 each shard's epoch pipeline — then releases every parked
//                 response at once. One log-flush round per WAVE, not per
//                 write or per shard-batch.
//   kIndependent  per-shard commit: each worker commits its own shard
//                 after each drained batch, then releases that batch's
//                 write responses. The baseline group commit is measured
//                 against (bench/abl_paxkv.cpp): at N shards it issues up
//                 to N log-flush rounds where a wave issues one.
//   kVolatile     acknowledge on apply; no commits at all. Upper bound on
//                 throughput, no durability — for measurement only.
//
// In both durable modes a response leaving the socket implies the write
// (and, per epoch ordering, every earlier write on that shard) is durable
// on its shard's PM. The crash-consistency contract across shards is the
// wave cut: tests/kv_group_commit_crash_test.cpp.
//
// Threading summary: loop_threads event-loop threads (each owns its Conns
// exclusively), one thread per shard (owns that shard's ops), coordinator
// thread (kGroup), all cross-thread traffic via mutex-guarded queues —
// TSan-clean by construction (tests/kv_server_test.cpp rides in the TSan
// CI job, including the multi-loop torture case).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/kv/protocol.hpp"
#include "pax/kv/store.hpp"

namespace pax::kv {

struct KvServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  KvStoreOptions store;

  enum class CommitMode { kGroup, kIndependent, kVolatile };
  CommitMode commit_mode = CommitMode::kGroup;

  /// I/O engine per event loop. kIoUring requires both build support
  /// (PAX_WITH_LIBURING) and a capable kernel — start() fails cleanly
  /// otherwise; probe with KvServer::io_uring_supported() first.
  enum class Backend { kEpoll, kIoUring };
  Backend backend = Backend::kEpoll;

  /// Event-loop threads, each with its own SO_REUSEPORT listener and
  /// disjoint connection set (clamped to >= 1).
  std::size_t loop_threads = 1;

  /// Pin loop i → CPU i and shard worker j → CPU loop_threads + j
  /// (mod CPU count). Off by default: only wins on multi-core hosts.
  bool pin_loops = false;

  /// kGroup cadence: a wave fires when this many write acks are pending…
  std::uint64_t group_max_ops = 256;
  /// …or this long after the first of them arrived, whichever is first.
  std::chrono::microseconds group_interval{200};

  /// Reads pause once a connection has this many responses outstanding.
  std::size_t max_inflight_per_conn = 1024;
};

struct KvServerStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class EventBackend;

class KvServer {
 public:
  /// Binds, listens, and spawns the event loops, shard workers, and (in
  /// kGroup mode) the commit coordinator. Returns with the server live.
  static Result<std::unique_ptr<KvServer>> start(
      const KvServerOptions& options);

  /// True when Backend::kIoUring would work here: the build has io_uring
  /// support and the running kernel provides the required ops.
  static bool io_uring_supported();

  /// stop() + join everything.
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// The bound TCP port (useful with port = 0). All listeners share it.
  std::uint16_t port() const { return port_; }

  /// Number of event-loop threads actually running.
  std::size_t loop_count() const { return loops_.size(); }

  /// "epoll" or "io_uring".
  const char* backend_name() const;

  /// Graceful shutdown: stops accepting, joins all threads, closes every
  /// connection. Idempotent. Parked write acks are completed (their wave
  /// is flushed) before the coordinator exits.
  void stop();

  KvStore& store() { return *store_; }
  KvServerStats stats() const;

  /// The STATS payload: server counters plus serving-plane shape (backend,
  /// loops) plus, per shard, the runtime's RuntimeStats/SyncStats
  /// (including the SyncTuner's current knob decisions), PipelineStats,
  /// device log-flush counters, and the group-commit wave stats — the
  /// observability surface for adaptive tuning under live traffic.
  std::string stats_json() const;

 private:
  struct Op {
    std::uint32_t loop = 0;  // originating event loop (completion routing)
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    OpCode op = OpCode::kGet;
    std::string key;
    std::string value;
  };

  struct Completion {
    std::uint32_t loop = 0;
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::vector<std::byte> resp;
  };

  struct Pending {
    bool ready = false;
    std::vector<std::byte> resp;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameParser parser;
    std::uint64_t next_seq = 0;  // seq of the next request parsed
    std::uint64_t base_seq = 0;  // seq of inflight.front()
    std::deque<Pending> inflight;
    std::vector<std::byte> rbuf;  // receive buffer (stable: backends keep
                                  // a pointer into it while a recv is armed)
    std::vector<std::byte> out;   // ordered response bytes being sent
    std::size_t out_off = 0;
    bool recv_armed = false;
    bool send_armed = false;
    bool paused_read = false;  // in-flight cap reached: recv not re-armed
  };

  // One per event-loop thread. Everything here except comp_mu/completions
  // is owned exclusively by that thread (no locks on the socket hot path).
  struct EventLoop {
    std::size_t index = 0;
    int listen_fd = -1;  // this loop's SO_REUSEPORT listener
    int wake_fd = -1;
    std::unique_ptr<EventBackend> backend;
    std::thread thread;

    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
    // Closed conns with in-kernel I/O still draining (io_uring): buffers
    // must stay alive until the backend delivers kClosed.
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> dying;
    std::uint64_t next_conn_id = 2;  // 0/1 reserved (listener, wake)

    // This loop's MPSC completion queue: workers/coordinator → loop.
    std::mutex comp_mu;
    std::vector<Completion> completions;
  };

  struct ShardWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Op> queue;
    bool stop = false;
    std::thread thread;
  };

  KvServer() = default;

  Status setup_listeners(const KvServerOptions& options);
  void event_loop(EventLoop& loop);
  void on_accepted(EventLoop& loop, int fd);
  void on_recv(EventLoop& loop, std::uint64_t conn_id, ssize_t result);
  void on_send(EventLoop& loop, std::uint64_t conn_id, ssize_t result);
  bool handle_request(EventLoop& loop, Conn& conn, const Request& req);
  void arm_recv(EventLoop& loop, Conn& conn);
  /// Moves the ready response prefix out and keeps exactly one send armed.
  void try_flush(EventLoop& loop, Conn& conn);
  void close_conn(EventLoop& loop, std::uint64_t conn_id);
  void drain_completions(EventLoop& loop);
  void shutdown_loop(EventLoop& loop);

  void worker_loop(std::size_t shard);
  void execute_op(std::size_t shard, const Op& op,
                  std::vector<Completion>* deferred_writes);
  void coordinator_loop();

  /// Routes completions to their originating loops, one wake per loop.
  void post_completions(std::vector<Completion> batch);
  void wake_loop(EventLoop& loop);

  KvServerOptions options_;
  std::unique_ptr<KvStore> store_;
  std::uint16_t port_ = 0;
  // Cached at setup so stats_json() stays truthful after stop() tears the
  // loops down (paxkv dumps a final STATS document on SIGTERM).
  const char* backend_name_ = "?";

  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;  // join-once latch (main thread)

  std::vector<std::unique_ptr<ShardWorker>> workers_;

  // kGroup coordinator state: write acks parked until their wave commits.
  std::mutex co_mu_;
  std::condition_variable co_cv_;
  std::vector<Completion> parked_writes_;
  bool co_stop_ = false;
  std::thread co_thread_;

  // Counters (relaxed atomics: single-writer or monotonic).
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> get_hits_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> dels_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace pax::kv
