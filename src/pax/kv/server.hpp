// KvServer — the PaxKV network serving frontend.
//
// One epoll event loop (non-blocking sockets, level-triggered) owns every
// connection; N shard workers own the data plane; an optional commit
// coordinator owns durability. The request path:
//
//   socket bytes → FrameParser → per-connection in-flight slot (responses
//   are sent strictly in request order) → the owning shard's dispatch
//   queue → shard worker executes against KvStore → completion (response
//   bytes) flows back to the event loop over an MPSC queue + eventfd wake
//   → ordered prefix of ready responses is flushed to the socket.
//
// Per-connection pipelining falls out of the in-flight deque: a client may
// write any number of request frames before reading; the server caps the
// in-flight window (max_inflight_per_conn) by pausing reads — TCP
// back-pressure does the rest.
//
// ── Durability: when is a write acknowledged? ─────────────────────────────
//
// GETs (and missed DELs) complete as soon as the shard worker executes
// them: they read the latest applied value. Successful PUT/DEL responses
// are governed by the commit mode:
//
//   kGroup        cross-shard epoch group commit. Writes are applied
//                 immediately but their responses are parked with the
//                 coordinator; the coordinator accumulates dirty shards
//                 and, every group_interval (or sooner at group_max_ops
//                 pending writes), issues ONE commit wave — one
//                 persist_async() per dirty shard, drains overlapping on
//                 each shard's epoch pipeline — then releases every parked
//                 response at once. One log-flush round per WAVE, not per
//                 write or per shard-batch.
//   kIndependent  per-shard commit: each worker commits its own shard
//                 after each drained batch, then releases that batch's
//                 write responses. The baseline group commit is measured
//                 against (bench/abl_paxkv.cpp): at N shards it issues up
//                 to N log-flush rounds where a wave issues one.
//   kVolatile     acknowledge on apply; no commits at all. Upper bound on
//                 throughput, no durability — for measurement only.
//
// In both durable modes a response leaving the socket implies the write
// (and, per epoch ordering, every earlier write on that shard) is durable
// on its shard's PM. The crash-consistency contract across shards is the
// wave cut: tests/kv_group_commit_crash_test.cpp.
//
// Threading summary: event loop thread (owns Conns exclusively), one
// thread per shard (owns that shard's ops), coordinator thread (kGroup),
// all cross-thread traffic via mutex-guarded queues — TSan-clean by
// construction (tests/kv_server_test.cpp rides in the TSan CI job).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/kv/protocol.hpp"
#include "pax/kv/store.hpp"

namespace pax::kv {

struct KvServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read the bound port from port()
  KvStoreOptions store;

  enum class CommitMode { kGroup, kIndependent, kVolatile };
  CommitMode commit_mode = CommitMode::kGroup;

  /// kGroup cadence: a wave fires when this many write acks are pending…
  std::uint64_t group_max_ops = 256;
  /// …or this long after the first of them arrived, whichever is first.
  std::chrono::microseconds group_interval{200};

  /// Reads pause once a connection has this many responses outstanding.
  std::size_t max_inflight_per_conn = 1024;
};

struct KvServerStats {
  std::uint64_t conns_accepted = 0;
  std::uint64_t conns_closed = 0;
  std::uint64_t requests = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t puts = 0;
  std::uint64_t dels = 0;
  std::uint64_t stats_requests = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class KvServer {
 public:
  /// Binds, listens, and spawns the event loop, shard workers, and (in
  /// kGroup mode) the commit coordinator. Returns with the server live.
  static Result<std::unique_ptr<KvServer>> start(
      const KvServerOptions& options);

  /// stop() + join everything.
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// The bound TCP port (useful with port = 0).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stops accepting, joins all threads, closes every
  /// connection. Idempotent. Parked write acks are completed (their wave
  /// is flushed) before the coordinator exits.
  void stop();

  KvStore& store() { return *store_; }
  KvServerStats stats() const;

  /// The STATS payload: server counters plus, per shard, the runtime's
  /// RuntimeStats/SyncStats (including the SyncTuner's current knob
  /// decisions), PipelineStats, device log-flush counters, and the group-
  /// commit wave stats — the observability surface for adaptive tuning
  /// under live traffic.
  std::string stats_json() const;

 private:
  struct Op {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    OpCode op = OpCode::kGet;
    std::string key;
    std::string value;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::vector<std::byte> resp;
  };

  struct Pending {
    bool ready = false;
    std::vector<std::byte> resp;
  };

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    FrameParser parser;
    std::uint64_t next_seq = 0;  // seq of the next request parsed
    std::uint64_t base_seq = 0;  // seq of inflight.front()
    std::deque<Pending> inflight;
    std::vector<std::byte> out;
    std::size_t out_off = 0;
    bool want_write = false;   // EPOLLOUT armed
    bool paused_read = false;  // EPOLLIN disarmed (in-flight cap)
  };

  struct ShardWorker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Op> queue;
    bool stop = false;
    std::thread thread;
  };

  KvServer() = default;

  Status setup_listener(const KvServerOptions& options);
  void event_loop();
  void accept_ready();
  // The three calls below may close (and so destroy) the connection; they
  // return false when they did, and the caller must not touch `conn` again.
  void conn_readable(Conn& conn);
  bool conn_writable(Conn& conn);
  bool handle_request(Conn& conn, const Request& req);
  bool flush_conn(Conn& conn);
  void update_epoll(Conn& conn);
  void close_conn(std::uint64_t conn_id);
  void drain_completions();

  void worker_loop(std::size_t shard);
  void execute_op(std::size_t shard, const Op& op,
                  std::vector<Completion>* deferred_writes);
  void coordinator_loop();

  /// Queues a completion for the event loop and wakes it.
  void complete(Completion completion);
  void wake_loop();

  KvServerOptions options_;
  std::unique_ptr<KvStore> store_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t port_ = 0;

  std::thread loop_thread_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;  // join-once latch (main thread)

  // Event-loop-owned state (no lock: only loop_thread_ touches it).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd
  bool accepts_paused_ = false;     // listener deregistered (fd exhaustion)

  std::vector<std::unique_ptr<ShardWorker>> workers_;

  // MPSC completion queue: workers/coordinator → event loop.
  std::mutex comp_mu_;
  std::vector<Completion> completions_;

  // kGroup coordinator state: write acks parked until their wave commits.
  std::mutex co_mu_;
  std::condition_variable co_cv_;
  std::vector<Completion> parked_writes_;
  bool co_stop_ = false;
  std::thread co_thread_;

  // Counters (relaxed atomics: single-writer or monotonic).
  std::atomic<std::uint64_t> conns_accepted_{0};
  std::atomic<std::uint64_t> conns_closed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> get_hits_{0};
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> dels_{0};
  std::atomic<std::uint64_t> stats_requests_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace pax::kv
