#include "pax/kv/store.hpp"

#include <algorithm>
#include <utility>

namespace pax::kv {

namespace {

// Per-shard runtime options: a non-zero vpm_base_hint is strided so every
// shard gets its own fixed mapping range. Crash tests rely on this — a
// reincarnated device (PmemDevice::create_in_memory_from a crash cut) is a
// new object, so the runtime's per-device base registry can't place it;
// only a fixed per-shard hint makes recovered interior pointers valid.
libpax::RuntimeOptions shard_runtime_options(const KvStoreOptions& options,
                                             std::size_t shard) {
  libpax::RuntimeOptions rt = options.runtime;
  if (rt.vpm_base_hint != 0) {
    rt.vpm_base_hint += shard * (std::uintptr_t{1} << 36);  // 64 GiB apart
  }
  return rt;
}

}  // namespace

libpax::RuntimeOptions KvStoreOptions::serving_runtime_defaults() {
  libpax::RuntimeOptions rt;
  rt.pipeline_depth = 2;     // overlap wave drains with request processing
  rt.log_ring_slots = 1024;  // lock-free undo appends on the hot path
  rt.track_lines = true;
  return rt;
}

Result<std::unique_ptr<KvStore>> KvStore::create_in_memory(
    const KvStoreOptions& options) {
  if (options.shards == 0) {
    return invalid_argument("KvStore needs at least one shard");
  }
  std::vector<std::unique_ptr<libpax::PaxRuntime>> runtimes;
  runtimes.reserve(options.shards);
  for (std::size_t i = 0; i < options.shards; ++i) {
    auto rt = libpax::PaxRuntime::create_in_memory(
        options.shard_pool_bytes, shard_runtime_options(options, i));
    if (!rt.ok()) return rt.status();
    runtimes.push_back(std::move(rt).value());
  }
  return build(std::move(runtimes), options);
}

Result<std::unique_ptr<KvStore>> KvStore::attach(
    std::span<pmem::PmemDevice* const> devices,
    const KvStoreOptions& options) {
  if (devices.size() != options.shards) {
    return invalid_argument("device count must match shard count");
  }
  if (options.shards == 0) {
    return invalid_argument("KvStore needs at least one shard");
  }
  std::vector<std::unique_ptr<libpax::PaxRuntime>> runtimes;
  runtimes.reserve(options.shards);
  for (std::size_t i = 0; i < devices.size(); ++i) {
    auto rt = libpax::PaxRuntime::attach(
        devices[i], shard_runtime_options(options, i));
    if (!rt.ok()) return rt.status();
    runtimes.push_back(std::move(rt).value());
  }
  return build(std::move(runtimes), options);
}

Result<std::unique_ptr<KvStore>> KvStore::build(
    std::vector<std::unique_ptr<libpax::PaxRuntime>> runtimes,
    const KvStoreOptions& options) {
  auto store = std::unique_ptr<KvStore>(new KvStore());
  store->shards_.reserve(runtimes.size());
  for (auto& rt : runtimes) {
    auto shard = std::make_unique<Shard>();
    shard->runtime = std::move(rt);
    auto map = Map::open(*shard->runtime, options.map_shards);
    if (!map.ok()) return map.status();
    shard->map = std::make_unique<Map>(std::move(map).value());
    store->shards_.push_back(std::move(shard));
  }

  std::vector<libpax::EpochGroupCommit::Participant> participants;
  participants.reserve(store->shards_.size());
  for (auto& shard : store->shards_) {
    participants.push_back(libpax::EpochGroupCommit::Participant{
        shard->runtime.get(),
        // Seal under full map quiescence: ShardedMap::persist_async takes
        // every slice lock for the duration of the snapshot swap.
        [map = shard->map.get()] { return map->persist_async(); }});
  }
  store->group_ =
      std::make_unique<libpax::EpochGroupCommit>(std::move(participants));
  return store;
}

void KvStore::put(std::string_view key, std::string_view value) {
  const std::size_t idx = shard_for(key);
  Shard& shard = *shards_[idx];
  libpax::PaxStlAllocator<char> alloc(&shard.runtime->heap());
  // emplace() constructs the pool-backed strings under the slice lock, so
  // the persistent-heap allocation is covered by the quiescence a group-
  // commit seal establishes via lock_all() — a wave can never snapshot the
  // heap mid-allocation.
  shard.map->emplace(
      key, [&] { return PString(key.begin(), key.end(), alloc); },
      [&] { return PString(value.begin(), value.end(), alloc); });
  group_->mark_dirty(idx);
}

bool KvStore::get(std::string_view key, std::string* out) const {
  const Shard& shard = *shards_[shard_for(key)];
  return shard.map->with(key, [out](const PString& value) {
    out->assign(value.data(), value.size());
  });
}

bool KvStore::erase(std::string_view key) {
  const std::size_t idx = shard_for(key);
  const bool removed = shards_[idx]->map->erase(key);
  if (removed) group_->mark_dirty(idx);
  return removed;
}

std::vector<std::pair<std::string, std::string>> KvStore::dump_shard(
    std::size_t i) const {
  std::vector<std::pair<std::string, std::string>> out;
  shards_[i]->map->for_each([&out](const PString& k, const PString& v) {
    out.emplace_back(std::string(k.data(), k.size()),
                     std::string(v.data(), v.size()));
  });
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t KvStore::total_log_flushes() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->runtime->device().log_stats().flushes;
  }
  return total;
}

}  // namespace pax::kv
