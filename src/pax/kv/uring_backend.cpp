// io_uring EventBackend — the submission-path counterpart of
// epoll_backend.cpp.
//
// Every arm_recv/arm_send stages one SQE; wait() publishes the whole batch
// with a single io_uring_submit_and_wait_timeout, so an iteration that
// touches K connections costs one syscall instead of K recv/send calls
// plus an epoll_wait. The listener runs as a multishot accept when the
// kernel offers it (one persistent SQE feeds every incoming connection),
// falling back to re-armed oneshot accepts on -EINVAL.
//
// Lifetime rule: the kernel may write into a connection's recv buffer
// until the matching CQE retires, so remove_conn() cannot free buffers
// synchronously. It stages IORING_OP_ASYNC_CANCEL for the connection's
// outstanding user_data values, parks the connection in dying_, and emits
// kClosed once its in-flight count reaches zero — only then may the
// caller destroy the Conn (see event_backend.hpp).
#include "pax/kv/event_backend.hpp"

#ifndef PAX_HAVE_LIBURING
#define PAX_HAVE_LIBURING 0
#endif

#if !PAX_HAVE_LIBURING

namespace pax::kv {
std::unique_ptr<EventBackend> make_io_uring_backend() { return nullptr; }
bool io_uring_available() { return false; }
}  // namespace pax::kv

#else  // PAX_HAVE_LIBURING

#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "pax/common/log.hpp"
#include "pax/kv/uring_shim.hpp"

namespace pax::kv {

namespace {

// CQE user_data encoding: (conn_id << 3) | tag. Accept/wake use conn_id 0;
// real connections start at id 2, so the spaces never collide.
constexpr std::uint64_t kTagAccept = 0;
constexpr std::uint64_t kTagRecv = 1;
constexpr std::uint64_t kTagSend = 2;
constexpr std::uint64_t kTagWake = 3;
constexpr std::uint64_t kTagCancel = 4;
constexpr std::uint64_t kTagMask = 7;

std::uint64_t make_data(std::uint64_t conn_id, std::uint64_t tag) {
  return (conn_id << 3) | tag;
}

constexpr unsigned kRingEntries = 512;

class UringBackend final : public EventBackend {
 public:
  ~UringBackend() override {
    if (ring_ok_) io_uring_queue_exit(&ring_);
    for (auto& [id, st] : dying_) ::close(st.fd);
    for (auto& [id, st] : conns_) ::close(st.fd);
  }

  Status init(int listen_fd, int wake_fd) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    const int rc = io_uring_queue_init(kRingEntries, &ring_, 0);
    if (rc != 0) {
      return io_error(std::string("io_uring_queue_init: ") +
                      std::strerror(-rc));
    }
    ring_ok_ = true;
#ifdef IORING_ACCEPT_MULTISHOT
    multishot_ = true;
#endif
    arm_wake();
    arm_accept();
    return Status::ok();
  }

  Status add_conn(std::uint64_t conn_id, int fd) override {
    ConnState st;
    st.fd = fd;
    conns_.emplace(conn_id, st);
    return Status::ok();
  }

  bool remove_conn(std::uint64_t conn_id, int fd) override {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) {
      ::close(fd);
      return true;
    }
    ConnState st = it->second;
    conns_.erase(it);
    if (st.pending == 0) {
      ::close(fd);
      return true;
    }
    // Cancel whatever is in flight; the cancelled ops' own CQEs (-ECANCELED
    // or a late success) drive pending to zero, then we close + emit
    // kClosed. Cancelling a user_data with nothing in flight just yields
    // -ENOENT on the cancel CQE, which we ignore.
    prep_cancel(make_data(conn_id, kTagRecv));
    prep_cancel(make_data(conn_id, kTagSend));
    dying_.emplace(conn_id, st);
    return false;
  }

  void arm_recv(std::uint64_t conn_id, int fd, void* buf,
                std::size_t len) override {
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) {
      push({BackendEvent::Kind::kRecv, conn_id, -1, -ENOMEM});
      return;
    }
    io_uring_prep_recv(sqe, fd, buf, len, 0);
    io_uring_sqe_set_data64(sqe, make_data(conn_id, kTagRecv));
    bump_pending(conn_id);
  }

  void arm_send(std::uint64_t conn_id, int fd, const void* buf,
                std::size_t len) override {
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) {
      push({BackendEvent::Kind::kSend, conn_id, -1, -ENOMEM});
      return;
    }
    io_uring_prep_send(sqe, fd, buf, len, MSG_NOSIGNAL);
    io_uring_sqe_set_data64(sqe, make_data(conn_id, kTagSend));
    bump_pending(conn_id);
  }

  void resume_accepts() override {
    if (!accepts_paused_) return;
    accepts_paused_ = false;
    arm_accept();
  }

  std::size_t wait(std::span<BackendEvent> out, int timeout_ms) override {
    if (!ready_.empty()) timeout_ms = 0;
    __kernel_timespec ts{};
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1000000;
    io_uring_cqe* first = nullptr;
    const int rc =
        io_uring_submit_and_wait_timeout(&ring_, &first, 1, &ts, nullptr);
    if (rc < 0 && rc != -ETIME && rc != -EINTR) {
      PAX_LOG_ERROR("io_uring_submit_and_wait_timeout: %s",
                    std::strerror(-rc));
    }
    drain_cq();
    std::size_t delivered = 0;
    while (delivered < out.size() && !ready_.empty()) {
      out[delivered++] = ready_.front();
      ready_.pop_front();
    }
    return delivered;
  }

  const char* name() const override { return "io_uring"; }

 private:
  struct ConnState {
    int fd = -1;
    int pending = 0;  // outstanding recv+send SQEs (0..2)
  };

  void push(BackendEvent ev) { ready_.push_back(ev); }

  io_uring_sqe* get_sqe() {
    io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
    if (sqe != nullptr) return sqe;
    // SQ full: flush what's staged and retry once. With a 512-entry ring
    // and <= 2 SQEs per connection this is effectively unreachable.
    io_uring_submit(&ring_);
    return io_uring_get_sqe(&ring_);
  }

  void bump_pending(std::uint64_t conn_id) {
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) ++it->second.pending;
  }

  void prep_cancel(std::uint64_t target_data) {
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) return;  // drained via the op's natural completion
    io_uring_prep_cancel64(sqe, target_data, 0);
    io_uring_sqe_set_data64(sqe, kTagCancel);
  }

  void arm_wake() {
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) return;
    io_uring_prep_read(sqe, wake_fd_, &wake_buf_, sizeof(wake_buf_), 0);
    io_uring_sqe_set_data64(sqe, kTagWake);
  }

  void arm_accept() {
    if (accepts_paused_) return;
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) return;
#ifdef IORING_ACCEPT_MULTISHOT
    if (multishot_) {
      io_uring_prep_multishot_accept(sqe, listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
      io_uring_sqe_set_data64(sqe, kTagAccept);
      return;
    }
#endif
    io_uring_prep_accept(sqe, listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
    io_uring_sqe_set_data64(sqe, kTagAccept);
  }

  void drain_cq() {
    std::array<io_uring_cqe*, 64> cqes;
    for (;;) {
      const unsigned n =
          io_uring_peek_batch_cqe(&ring_, cqes.data(), cqes.size());
      if (n == 0) return;
      for (unsigned i = 0; i < n; ++i) handle_cqe(cqes[i]);
      io_uring_cq_advance(&ring_, n);
    }
  }

  void handle_cqe(const io_uring_cqe* cqe) {
    const std::uint64_t data = io_uring_cqe_get_data64(cqe);
    const std::uint64_t tag = data & kTagMask;
    const std::uint64_t conn_id = data >> 3;
    const int res = cqe->res;
    switch (tag) {
      case kTagAccept:
        handle_accept(cqe, res);
        return;
      case kTagWake:
        arm_wake();
        push({BackendEvent::Kind::kWake, 0, -1, 0});
        return;
      case kTagCancel:
        return;  // cancel SQE's own result; the target op CQEs separately
      case kTagRecv:
      case kTagSend:
        break;
      default:
        return;
    }
    if (auto dit = dying_.find(conn_id); dit != dying_.end()) {
      if (--dit->second.pending == 0) {
        ::close(dit->second.fd);
        dying_.erase(dit);
        push({BackendEvent::Kind::kClosed, conn_id, -1, 0});
      }
      return;
    }
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    --it->second.pending;
    push({tag == kTagRecv ? BackendEvent::Kind::kRecv
                          : BackendEvent::Kind::kSend,
          conn_id, -1, res});
  }

  void handle_accept(const io_uring_cqe* cqe, int res) {
    bool rearm = true;
#ifdef IORING_CQE_F_MORE
    if (multishot_ && res >= 0) {
      rearm = (cqe->flags & IORING_CQE_F_MORE) == 0;
    }
#else
    (void)cqe;
#endif
    if (res >= 0) {
      push({BackendEvent::Kind::kAccepted, 0, res, 0});
      if (rearm) arm_accept();
      return;
    }
    if (res == -EINVAL && multishot_) {
      // Kernel has the flag in its headers but not the feature: drop to
      // oneshot accepts for the life of this backend.
      multishot_ = false;
      arm_accept();
      return;
    }
    if (res == -ECANCELED || res == -EINTR || res == -ECONNABORTED ||
        res == -EPROTO) {
      arm_accept();
      return;
    }
    // EMFILE/ENFILE/ENOMEM: stop accepting until the caller frees an fd
    // and calls resume_accepts().
    PAX_LOG_ERROR("io_uring accept: %s; pausing accepts",
                  std::strerror(-res));
    accepts_paused_ = true;
    push({BackendEvent::Kind::kAcceptPaused, 0, -1, 0});
  }

  io_uring ring_{};
  bool ring_ok_ = false;
  bool multishot_ = false;
  bool accepts_paused_ = false;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  std::uint64_t wake_buf_ = 0;
  std::unordered_map<std::uint64_t, ConnState> conns_;
  std::unordered_map<std::uint64_t, ConnState> dying_;
  std::deque<BackendEvent> ready_;
};

}  // namespace

std::unique_ptr<EventBackend> make_io_uring_backend() {
  if (!io_uring_available()) return nullptr;
  return std::make_unique<UringBackend>();
}

bool io_uring_available() {
  static const bool available = [] {
    io_uring ring;
    if (io_uring_queue_init(8, &ring, 0) != 0) return false;
    bool ok = true;
#if defined(IORING_REGISTER_PROBE) && defined(IO_URING_OP_SUPPORTED)
    struct ProbeBuf {
      io_uring_probe probe;
      io_uring_probe_op ops[256];
    };
    ProbeBuf buf;
    std::memset(&buf, 0, sizeof(buf));
    const long rc = syscall(__NR_io_uring_register, ring.ring_fd,
                            IORING_REGISTER_PROBE, &buf, 256);
    if (rc < 0) {
      ok = false;
    } else {
      for (const int op : {IORING_OP_RECV, IORING_OP_SEND, IORING_OP_ACCEPT,
                           IORING_OP_ASYNC_CANCEL, IORING_OP_READ}) {
        if (op >= buf.probe.ops_len ||
            (buf.probe.ops[op].flags & IO_URING_OP_SUPPORTED) == 0) {
          ok = false;
        }
      }
    }
#endif
    io_uring_queue_exit(&ring);
    return ok;
  }();
  return available;
}

}  // namespace pax::kv

#endif  // PAX_HAVE_LIBURING
