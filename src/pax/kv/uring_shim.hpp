// io_uring access layer for the PaxKV io_uring event-loop backend.
//
// When the build found a system liburing (PAX_URING_SYSTEM), this header
// is just <liburing.h>. Otherwise it provides a minimal, source-compatible
// re-implementation of the exact liburing subset uring_backend.cpp uses,
// over the raw io_uring_setup/io_uring_enter syscalls and the standard
// ring mmaps — so the backend builds and runs on any kernel with
// <linux/io_uring.h> headers, no library dependency. The subset:
//
//   io_uring_queue_init / io_uring_queue_exit
//   io_uring_get_sqe / io_uring_submit / io_uring_submit_and_wait_timeout
//   io_uring_peek_batch_cqe / io_uring_cq_advance
//   io_uring_prep_{recv,send,read,accept,multishot_accept,cancel64}
//   io_uring_sqe_set_data64 / io_uring_cqe_get_data64
//
// The shim requires IORING_FEAT_EXT_ARG (kernel >= 5.11) so that a waiting
// io_uring_enter can carry a timeout without auxiliary timeout SQEs;
// io_uring_queue_init fails with -ENOSYS on older kernels and the backend
// reports io_uring as unavailable (the server then refuses kIoUring and
// tests skip).
#pragma once

#if defined(PAX_URING_SYSTEM) && PAX_URING_SYSTEM
#include <liburing.h>
#else

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstring>

struct io_uring {
  int ring_fd = -1;
  unsigned features = 0;

  // Submission queue.
  unsigned* sq_khead = nullptr;
  unsigned* sq_ktail = nullptr;
  unsigned* sq_array = nullptr;
  unsigned sq_ring_mask = 0;
  unsigned sq_ring_entries = 0;
  io_uring_sqe* sqes = nullptr;
  unsigned sqe_tail = 0;       // local (not yet published) SQE index
  unsigned sqe_submitted = 0;  // published-and-submitted watermark

  // Completion queue.
  unsigned* cq_khead = nullptr;
  unsigned* cq_ktail = nullptr;
  unsigned cq_ring_mask = 0;
  unsigned cq_ring_entries = 0;
  io_uring_cqe* cqes = nullptr;

  void* sq_ring_ptr = nullptr;
  std::size_t sq_ring_sz = 0;
  void* cq_ring_ptr = nullptr;  // == sq_ring_ptr under FEAT_SINGLE_MMAP
  std::size_t cq_ring_sz = 0;
  std::size_t sqes_sz = 0;
};

namespace pax::kv::uring_detail {

inline int sys_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

inline int sys_enter(int fd, unsigned to_submit, unsigned min_complete,
                     unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit,
                                  min_complete, flags, arg, argsz));
}

inline unsigned load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(
      std::memory_order_acquire);
}

inline void store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace pax::kv::uring_detail

inline void io_uring_queue_exit(io_uring* ring) {
  if (ring->sqes != nullptr) munmap(ring->sqes, ring->sqes_sz);
  if (ring->cq_ring_ptr != nullptr &&
      ring->cq_ring_ptr != ring->sq_ring_ptr) {
    munmap(ring->cq_ring_ptr, ring->cq_ring_sz);
  }
  if (ring->sq_ring_ptr != nullptr) {
    munmap(ring->sq_ring_ptr, ring->sq_ring_sz);
  }
  if (ring->ring_fd >= 0) close(ring->ring_fd);
  *ring = io_uring{};
}

inline int io_uring_queue_init(unsigned entries, io_uring* ring,
                               unsigned flags) {
  *ring = io_uring{};
  io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  p.flags = flags;
  const int fd = pax::kv::uring_detail::sys_setup(entries, &p);
  if (fd < 0) return -errno;
  ring->ring_fd = fd;
  ring->features = p.features;
#ifdef IORING_FEAT_EXT_ARG
  const bool have_ext_arg = (p.features & IORING_FEAT_EXT_ARG) != 0;
#else
  const bool have_ext_arg = false;
#endif
  if (!have_ext_arg) {
    io_uring_queue_exit(ring);
    return -ENOSYS;  // shim needs EXT_ARG timeouts (kernel >= 5.11)
  }

  ring->sq_ring_sz = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  ring->cq_ring_sz = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap && ring->cq_ring_sz > ring->sq_ring_sz) {
    ring->sq_ring_sz = ring->cq_ring_sz;
  }
  ring->sq_ring_ptr =
      mmap(nullptr, ring->sq_ring_sz, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring->sq_ring_ptr == MAP_FAILED) {
    ring->sq_ring_ptr = nullptr;
    io_uring_queue_exit(ring);
    return -ENOMEM;
  }
  if (single_mmap) {
    ring->cq_ring_ptr = ring->sq_ring_ptr;
  } else {
    ring->cq_ring_ptr =
        mmap(nullptr, ring->cq_ring_sz, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring->cq_ring_ptr == MAP_FAILED) {
      ring->cq_ring_ptr = nullptr;
      io_uring_queue_exit(ring);
      return -ENOMEM;
    }
  }
  ring->sqes_sz = p.sq_entries * sizeof(io_uring_sqe);
  ring->sqes = static_cast<io_uring_sqe*>(
      mmap(nullptr, ring->sqes_sz, PROT_READ | PROT_WRITE,
           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
  if (ring->sqes == MAP_FAILED) {
    ring->sqes = nullptr;
    io_uring_queue_exit(ring);
    return -ENOMEM;
  }

  auto* sq = static_cast<unsigned char*>(ring->sq_ring_ptr);
  ring->sq_khead = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  ring->sq_ktail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  ring->sq_ring_mask =
      *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  ring->sq_ring_entries =
      *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_entries);
  ring->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);

  auto* cq = static_cast<unsigned char*>(ring->cq_ring_ptr);
  ring->cq_khead = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  ring->cq_ktail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  ring->cq_ring_mask =
      *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  ring->cq_ring_entries =
      *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_entries);
  ring->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

  // Identity-fill the SQ index array once: slot i always submits sqes[i].
  for (unsigned i = 0; i < ring->sq_ring_entries; ++i) {
    ring->sq_array[i] = i;
  }
  return 0;
}

inline io_uring_sqe* io_uring_get_sqe(io_uring* ring) {
  const unsigned head = pax::kv::uring_detail::load_acquire(ring->sq_khead);
  if (ring->sqe_tail - head >= ring->sq_ring_entries) return nullptr;
  io_uring_sqe* sqe = &ring->sqes[ring->sqe_tail & ring->sq_ring_mask];
  ++ring->sqe_tail;
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

inline int io_uring_submit(io_uring* ring) {
  const unsigned to_submit = ring->sqe_tail - ring->sqe_submitted;
  if (to_submit == 0) return 0;
  pax::kv::uring_detail::store_release(ring->sq_ktail, ring->sqe_tail);
  const int n = pax::kv::uring_detail::sys_enter(
      ring->ring_fd, to_submit, 0, 0, nullptr, 0);
  if (n < 0) return -errno;
  ring->sqe_submitted += static_cast<unsigned>(n);
  return n;
}

inline unsigned io_uring_peek_batch_cqe(io_uring* ring, io_uring_cqe** out,
                                        unsigned count) {
  const unsigned tail = pax::kv::uring_detail::load_acquire(ring->cq_ktail);
  const unsigned head = *ring->cq_khead;
  unsigned n = tail - head;
  if (n > count) n = count;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = &ring->cqes[(head + i) & ring->cq_ring_mask];
  }
  return n;
}

inline void io_uring_cq_advance(io_uring* ring, unsigned nr) {
  if (nr == 0) return;
  pax::kv::uring_detail::store_release(ring->cq_khead,
                                       *ring->cq_khead + nr);
}

/// Submits pending SQEs and waits up to `ts` for `wait_nr` completions
/// (liburing signature; `out` receives the first ready CQE or nullptr).
/// Returns < 0 on error, including -ETIME on timeout.
inline int io_uring_submit_and_wait_timeout(io_uring* ring,
                                            io_uring_cqe** out,
                                            unsigned wait_nr,
                                            __kernel_timespec* ts,
                                            sigset_t* /*sigmask*/) {
  const int submitted = io_uring_submit(ring);
  if (submitted < 0) return submitted;
  io_uring_cqe* ready[1];
  if (io_uring_peek_batch_cqe(ring, ready, 1) >= wait_nr) {
    if (out != nullptr) *out = ready[0];
    return submitted;
  }
  io_uring_getevents_arg arg;
  std::memset(&arg, 0, sizeof(arg));
  arg.ts = reinterpret_cast<std::uint64_t>(ts);
  const int rc = pax::kv::uring_detail::sys_enter(
      ring->ring_fd, 0, wait_nr, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
      &arg, sizeof(arg));
  if (rc < 0 && errno != ETIME) return -errno;
  if (out != nullptr) {
    *out = io_uring_peek_batch_cqe(ring, ready, 1) > 0 ? ready[0] : nullptr;
  }
  return rc < 0 ? -ETIME : submitted;
}

// --- SQE preparation (mirrors liburing's helpers) --------------------------

inline void io_uring_sqe_set_data64(io_uring_sqe* sqe, std::uint64_t data) {
  sqe->user_data = data;
}

inline std::uint64_t io_uring_cqe_get_data64(const io_uring_cqe* cqe) {
  return cqe->user_data;
}

inline void io_uring_prep_rw(int op, io_uring_sqe* sqe, int fd,
                             const void* addr, unsigned len,
                             std::uint64_t offset) {
  sqe->opcode = static_cast<std::uint8_t>(op);
  sqe->fd = fd;
  sqe->off = offset;
  sqe->addr = reinterpret_cast<std::uint64_t>(addr);
  sqe->len = len;
}

inline void io_uring_prep_recv(io_uring_sqe* sqe, int fd, void* buf,
                               std::size_t len, int flags) {
  io_uring_prep_rw(IORING_OP_RECV, sqe, fd, buf,
                   static_cast<unsigned>(len), 0);
  sqe->msg_flags = static_cast<std::uint32_t>(flags);
}

inline void io_uring_prep_send(io_uring_sqe* sqe, int fd, const void* buf,
                               std::size_t len, int flags) {
  io_uring_prep_rw(IORING_OP_SEND, sqe, fd, buf,
                   static_cast<unsigned>(len), 0);
  sqe->msg_flags = static_cast<std::uint32_t>(flags);
}

inline void io_uring_prep_read(io_uring_sqe* sqe, int fd, void* buf,
                               unsigned nbytes, std::uint64_t offset) {
  io_uring_prep_rw(IORING_OP_READ, sqe, fd, buf, nbytes, offset);
}

inline void io_uring_prep_accept(io_uring_sqe* sqe, int fd,
                                 sockaddr* addr, socklen_t* addrlen,
                                 int flags) {
  io_uring_prep_rw(IORING_OP_ACCEPT, sqe, fd, addr, 0,
                   reinterpret_cast<std::uint64_t>(addrlen));
  sqe->accept_flags = static_cast<std::uint32_t>(flags);
}

#ifdef IORING_ACCEPT_MULTISHOT
inline void io_uring_prep_multishot_accept(io_uring_sqe* sqe, int fd,
                                           sockaddr* addr,
                                           socklen_t* addrlen, int flags) {
  io_uring_prep_accept(sqe, fd, addr, addrlen, flags);
  sqe->ioprio |= IORING_ACCEPT_MULTISHOT;
}
#endif

inline void io_uring_prep_cancel64(io_uring_sqe* sqe,
                                   std::uint64_t user_data, int flags) {
  io_uring_prep_rw(IORING_OP_ASYNC_CANCEL, sqe, -1, nullptr, 0, 0);
  sqe->addr = user_data;
  sqe->cancel_flags = static_cast<std::uint32_t>(flags);
}

#endif  // PAX_URING_SYSTEM
