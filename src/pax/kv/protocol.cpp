#include "pax/kv/protocol.hpp"

#include <algorithm>

namespace pax::kv {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xff));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const std::byte* p) {
  return static_cast<std::uint16_t>(std::to_integer<std::uint16_t>(p[0]) |
                                    (std::to_integer<std::uint16_t>(p[1])
                                     << 8));
}

std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(p[i]);
  }
  return v;
}

void put_bytes(std::vector<std::byte>& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

}  // namespace

void append_request(std::vector<std::byte>& out, OpCode op,
                    std::string_view key, std::string_view value) {
  const std::uint32_t body =
      static_cast<std::uint32_t>(kBodyHeaderBytes + key.size() + value.size());
  put_u32(out, body);
  out.push_back(static_cast<std::byte>(op));
  out.push_back(std::byte{0});  // flags
  put_u16(out, static_cast<std::uint16_t>(key.size()));
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  put_bytes(out, key);
  put_bytes(out, value);
}

void append_response(std::vector<std::byte>& out, RespStatus status,
                     std::string_view value) {
  const std::uint32_t body =
      static_cast<std::uint32_t>(kBodyHeaderBytes + value.size());
  put_u32(out, body);
  out.push_back(static_cast<std::byte>(status));
  out.push_back(std::byte{0});  // flags
  put_u16(out, 0);              // reserved
  put_u32(out, static_cast<std::uint32_t>(value.size()));
  put_bytes(out, value);
}

void FrameParser::feed(const std::byte* data, std::size_t len) {
  // Compact the consumed prefix before appending: buffered() bytes move at
  // most once per feed, and returned views are documented to die here.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

Result<std::optional<std::string_view>> FrameParser::next_body() {
  if (buf_.size() - pos_ < kFrameHeaderBytes) {
    return std::optional<std::string_view>{};
  }
  const std::uint32_t body_len = get_u32(buf_.data() + pos_);
  if (body_len < kBodyHeaderBytes || body_len > kMaxBodyLen) {
    return corruption("frame body length out of range");
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + body_len) {
    return std::optional<std::string_view>{};
  }
  const auto* body =
      reinterpret_cast<const char*>(buf_.data() + pos_ + kFrameHeaderBytes);
  pos_ += kFrameHeaderBytes + body_len;
  return std::optional<std::string_view>(std::string_view(body, body_len));
}

Result<std::optional<Request>> FrameParser::next_request() {
  auto body = next_body();
  if (!body.ok()) return body.status();
  if (!body.value().has_value()) return std::optional<Request>{};
  const std::string_view b = *body.value();

  const auto* p = reinterpret_cast<const std::byte*>(b.data());
  Request req;
  const std::uint8_t op = std::to_integer<std::uint8_t>(p[0]);
  if (op < static_cast<std::uint8_t>(OpCode::kGet) ||
      op > static_cast<std::uint8_t>(OpCode::kStats)) {
    return corruption("unknown opcode");
  }
  req.op = static_cast<OpCode>(op);
  const std::uint16_t key_len = get_u16(p + 2);
  const std::uint32_t val_len = get_u32(p + 4);
  if (key_len > kMaxKeyLen || val_len > kMaxValLen ||
      kBodyHeaderBytes + key_len + val_len != b.size()) {
    return corruption("request lengths disagree with frame size");
  }
  if (req.op == OpCode::kPut) {
    if (key_len == 0) return corruption("PUT without a key");
  } else if (val_len != 0) {
    return corruption("value on a non-PUT request");
  }
  if ((req.op == OpCode::kGet || req.op == OpCode::kDel) && key_len == 0) {
    return corruption("GET/DEL without a key");
  }
  req.key = b.substr(kBodyHeaderBytes, key_len);
  req.value = b.substr(kBodyHeaderBytes + key_len, val_len);
  return std::optional<Request>(req);
}

Result<std::optional<Response>> FrameParser::next_response() {
  auto body = next_body();
  if (!body.ok()) return body.status();
  if (!body.value().has_value()) return std::optional<Response>{};
  const std::string_view b = *body.value();

  const auto* p = reinterpret_cast<const std::byte*>(b.data());
  Response resp;
  const std::uint8_t status = std::to_integer<std::uint8_t>(p[0]);
  if (status > static_cast<std::uint8_t>(RespStatus::kBadRequest)) {
    return corruption("unknown response status");
  }
  resp.status = static_cast<RespStatus>(status);
  const std::uint32_t val_len = get_u32(p + 4);
  if (kBodyHeaderBytes + val_len != b.size()) {
    return corruption("response lengths disagree with frame size");
  }
  resp.value = b.substr(kBodyHeaderBytes, val_len);
  return std::optional<Response>(resp);
}

}  // namespace pax::kv
