// KvClient — a small blocking client for the PaxKV wire protocol.
//
// Two usage styles:
//
//   * Synchronous: get()/put()/del()/stats() — send one request, flush,
//     block for the response. What tests and simple tools want.
//   * Pipelined: send_*() appends frames to an internal buffer; flush()
//     writes them out in one syscall burst; recv_response() blocks for the
//     next response in order. The load generator keeps `depth` requests in
//     flight per connection this way — the server's in-flight window does
//     the rest.
//
// Not thread safe: one KvClient per thread (connections are cheap).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "pax/common/status.hpp"
#include "pax/kv/protocol.hpp"

namespace pax::kv {

/// A response with owned storage (FrameParser views die on the next feed).
struct OwnedResponse {
  RespStatus status = RespStatus::kError;
  std::string value;
};

class KvClient {
 public:
  static Result<KvClient> connect(const std::string& host,
                                  std::uint16_t port);
  ~KvClient();

  KvClient(KvClient&& other) noexcept;
  KvClient& operator=(KvClient&& other) noexcept;
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  // --- Pipelined interface ------------------------------------------------

  /// Append a request frame to the send buffer (no I/O).
  void send_get(std::string_view key);
  void send_put(std::string_view key, std::string_view value);
  void send_del(std::string_view key);
  void send_stats();

  /// Write the buffered frames to the socket.
  Status flush();

  /// Block until the next in-order response arrives.
  Result<OwnedResponse> recv_response();

  // --- Synchronous convenience --------------------------------------------

  Result<OwnedResponse> get(std::string_view key);
  Result<OwnedResponse> put(std::string_view key, std::string_view value);
  Result<OwnedResponse> del(std::string_view key);
  Result<OwnedResponse> stats();

 private:
  explicit KvClient(int fd) : fd_(fd) {}

  Result<OwnedResponse> roundtrip();

  int fd_ = -1;
  std::vector<std::byte> sendbuf_;
  FrameParser parser_;
};

}  // namespace pax::kv
