// KvStore — the PaxKV data plane: N shard runtimes, each a full PAX stack.
//
// Every shard owns a hash slice of the keyspace and is a complete,
// independent instance of the paper's pipeline: its own PmemDevice (or
// borrowed device for crash tests), PmemPool, PaxDevice, vPM region, heap,
// and a ShardedMap of persistent strings inside it. Shards never share
// state, so shard-local operations scale without cross-shard locks and a
// crash recovers each shard to its own last committed epoch.
//
// What ties the shards back together is durability policy, not data: an
// EpochGroupCommit coordinator (libpax/group_commit.hpp) spans all shard
// runtimes so a frontend can either commit shards independently or
// accumulate dirty shards and issue one commit wave covering all of them —
// the cross-shard epoch group commit the serving layer (server.hpp) builds
// its PUT acknowledgements on.
//
// Keyspace slicing uses FNV-1a, deliberately distinct from the
// std::hash-based slicing ShardedMap applies within a shard, so outer and
// inner shard selection stay uncorrelated. Keys and values are arbitrary
// byte strings (protocol.hpp bounds their sizes); inside a shard they live
// as pool-allocated strings, and lookups probe them as string_views via
// ShardedMap's transparent-hash path — a GET never allocates in (and so
// never dirties) the persistent heap.
//
// Thread safety: all operations are thread safe (ShardedMap shard locks);
// the server additionally routes each key's ops through one worker so
// per-connection ordering holds without extra synchronization.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/libpax/group_commit.hpp"
#include "pax/libpax/runtime.hpp"
#include "pax/libpax/sharded_map.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::kv {

/// Transparent hashing/equality over byte-string keys: probes accept
/// anything convertible to std::string_view (the pool-allocated key type
/// converts allocator-independently).
struct BytesHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct BytesEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

struct KvStoreOptions {
  /// Number of shard runtimes (the unit of group commit).
  std::size_t shards = 4;
  /// Pool bytes per shard (in-memory simulated PM unless attached).
  std::size_t shard_pool_bytes = 64 << 20;
  /// ShardedMap slices within each shard (lock granularity).
  std::size_t map_shards = 16;
  /// Per-shard runtime knobs. pipeline_depth > 0 is what lets group-commit
  /// waves overlap request processing; the serving defaults keep it on.
  libpax::RuntimeOptions runtime = serving_runtime_defaults();

  /// The serving configuration: pipelined epochs + lock-free undo ring,
  /// line-granular tracking on.
  static libpax::RuntimeOptions serving_runtime_defaults();
};

class KvStore {
 public:
  using PString = std::basic_string<char, std::char_traits<char>,
                                    libpax::PaxStlAllocator<char>>;
  using Map = libpax::ShardedMap<PString, PString, BytesHash, BytesEq>;

  /// Fresh store on in-memory simulated PM (one device per shard).
  static Result<std::unique_ptr<KvStore>> create_in_memory(
      const KvStoreOptions& options);

  /// Attaches to borrowed per-shard devices — the crash-test/recovery
  /// path: destroy the store, crash() each device, attach again and the
  /// shards recover to their committed epochs. `devices.size()` must equal
  /// `options.shards`.
  static Result<std::unique_ptr<KvStore>> attach(
      std::span<pmem::PmemDevice* const> devices,
      const KvStoreOptions& options);

  // --- Operations (thread safe) -------------------------------------------

  /// Inserts or overwrites. Marks the owning shard dirty in the group
  /// coordinator (the caller decides when a wave or per-shard commit
  /// covers it).
  void put(std::string_view key, std::string_view value);

  /// Point lookup; copies the value into `out` (volatile memory). Returns
  /// false when absent.
  bool get(std::string_view key, std::string* out) const;

  /// Removes `key`; returns true if present. Counts as a write for group
  /// commit (a deletion must be durable before it is acknowledged).
  bool erase(std::string_view key);

  // --- Topology -----------------------------------------------------------

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t shard_for(std::string_view key) const {
    return fnv1a(key) % shards_.size();
  }

  libpax::PaxRuntime& shard_runtime(std::size_t i) {
    return *shards_[i]->runtime;
  }
  Map& shard_map(std::size_t i) { return *shards_[i]->map; }
  bool recovered(std::size_t i) const { return shards_[i]->map->recovered(); }

  /// Keys living on shard `i` (for recovery audits; takes the shard's map
  /// locks).
  std::vector<std::pair<std::string, std::string>> dump_shard(
      std::size_t i) const;

  /// The cross-shard commit coordinator (one participant per shard, seal =
  /// that shard's ShardedMap::persist_async under full map quiescence).
  libpax::EpochGroupCommit& group() { return *group_; }

  /// Sum of undo-log flushes across every shard device — the denominator
  /// the group-commit claim is measured by (flushes per acknowledged op).
  std::uint64_t total_log_flushes() const;

 private:
  struct Shard {
    std::unique_ptr<libpax::PaxRuntime> runtime;
    std::unique_ptr<Map> map;
  };

  static std::uint64_t fnv1a(std::string_view s) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    return h;
  }

  static Result<std::unique_ptr<KvStore>> build(
      std::vector<std::unique_ptr<libpax::PaxRuntime>> runtimes,
      const KvStoreOptions& options);

  KvStore() = default;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<libpax::EpochGroupCommit> group_;
};

}  // namespace pax::kv
