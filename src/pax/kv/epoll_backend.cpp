// Epoll EventBackend — readiness-based implementation of the completion
// contract in event_backend.hpp.
//
// Level-triggered epoll with lazily-applied interest masks: EPOLLIN is
// subscribed only while a recv is armed and EPOLLOUT only while a send
// could not complete eagerly, so an idle (or read-paused) connection never
// spins the loop. arm_send() first tries the send() syscall inline — on
// anything but EAGAIN the completion is synthesized immediately and the
// next wait() returns without blocking. Mask changes are batched and
// applied with one epoll_ctl(MOD) per dirty connection at wait() entry,
// so the common arm→complete→re-arm cycle costs zero extra syscalls when
// the mask lands back where it started.
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "pax/common/log.hpp"
#include "pax/kv/event_backend.hpp"

namespace pax::kv {

namespace {

constexpr std::uint64_t kListenerKey = 0;
constexpr std::uint64_t kWakeKey = 1;

class EpollBackend final : public EventBackend {
 public:
  ~EpollBackend() override {
    if (ep_ >= 0) ::close(ep_);
  }

  Status init(int listen_fd, int wake_fd) override {
    listen_fd_ = listen_fd;
    wake_fd_ = wake_fd;
    ep_ = epoll_create1(EPOLL_CLOEXEC);
    if (ep_ < 0) return io_error("epoll_create1 failed");
    if (!ctl(EPOLL_CTL_ADD, listen_fd_, EPOLLIN, kListenerKey)) {
      return io_error("epoll_ctl(listener) failed");
    }
    if (!ctl(EPOLL_CTL_ADD, wake_fd_, EPOLLIN, kWakeKey)) {
      return io_error("epoll_ctl(wake) failed");
    }
    return Status::ok();
  }

  Status add_conn(std::uint64_t conn_id, int fd) override {
    ConnState st;
    st.fd = fd;
    // Registered with an empty mask: EPOLLERR/EPOLLHUP are always
    // reported; EPOLLIN arrives once a recv is armed.
    if (!ctl(EPOLL_CTL_ADD, fd, 0, conn_id)) {
      return io_error("epoll_ctl(add conn) failed");
    }
    conns_.emplace(conn_id, st);
    return Status::ok();
  }

  bool remove_conn(std::uint64_t conn_id, int fd) override {
    epoll_ctl(ep_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(conn_id);
    return true;  // nothing in flight: always quiesced
  }

  void arm_recv(std::uint64_t conn_id, int fd, void* buf,
                std::size_t len) override {
    (void)fd;
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    it->second.rbuf = buf;
    it->second.rlen = len;
    it->second.want_recv = true;
    mark_dirty(conn_id, it->second);
  }

  void arm_send(std::uint64_t conn_id, int fd, const void* buf,
                std::size_t len) override {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    // Eager attempt: most sends complete without waiting for EPOLLOUT.
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      push({BackendEvent::Kind::kSend, conn_id, -1, n});
      return;
    }
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      push({BackendEvent::Kind::kSend, conn_id, -1, -errno});
      return;
    }
    it->second.sbuf = buf;
    it->second.slen = len;
    it->second.want_send = true;
    mark_dirty(conn_id, it->second);
  }

  void resume_accepts() override {
    if (!accepts_paused_) return;
    if (ctl(EPOLL_CTL_ADD, listen_fd_, EPOLLIN, kListenerKey)) {
      accepts_paused_ = false;
    }
  }

  std::size_t wait(std::span<BackendEvent> out, int timeout_ms) override {
    apply_dirty();
    if (!ready_.empty()) timeout_ms = 0;  // don't block on queued events
    std::array<epoll_event, 64> events;
    const int n = epoll_wait(ep_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
    for (int i = 0; i < n; ++i) {
      dispatch(events[static_cast<std::size_t>(i)]);
    }
    std::size_t delivered = 0;
    while (delivered < out.size() && !ready_.empty()) {
      out[delivered++] = ready_.front();
      ready_.pop_front();
    }
    return delivered;
  }

  const char* name() const override { return "epoll"; }

 private:
  struct ConnState {
    int fd = -1;
    bool want_recv = false;
    bool want_send = false;
    void* rbuf = nullptr;
    std::size_t rlen = 0;
    const void* sbuf = nullptr;
    std::size_t slen = 0;
    std::uint32_t armed_mask = 0;  // mask currently installed in epoll
    bool dirty = false;
  };

  bool ctl(int op, int fd, std::uint32_t mask, std::uint64_t key) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = key;
    return epoll_ctl(ep_, op, fd, &ev) == 0;
  }

  void push(BackendEvent ev) { ready_.push_back(ev); }

  void mark_dirty(std::uint64_t conn_id, ConnState& st) {
    if (!st.dirty) {
      st.dirty = true;
      dirty_.push_back(conn_id);
    }
  }

  void apply_dirty() {
    for (const std::uint64_t id : dirty_) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      ConnState& st = it->second;
      st.dirty = false;
      std::uint32_t mask = 0;
      if (st.want_recv) mask |= EPOLLIN | EPOLLRDHUP;
      if (st.want_send) mask |= EPOLLOUT;
      if (mask != st.armed_mask) {
        if (ctl(EPOLL_CTL_MOD, st.fd, mask, id)) st.armed_mask = mask;
      }
    }
    dirty_.clear();
  }

  void dispatch(const epoll_event& ev) {
    const std::uint64_t key = ev.data.u64;
    if (key == kListenerKey) {
      drain_accepts();
      return;
    }
    if (key == kWakeKey) {
      std::uint64_t drained = 0;
      while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
      }
      push({BackendEvent::Kind::kWake, 0, -1, 0});
      return;
    }
    auto it = conns_.find(key);
    if (it == conns_.end()) return;
    ConnState& st = it->second;
    if ((ev.events & (EPOLLHUP | EPOLLERR)) != 0) {
      push({BackendEvent::Kind::kHangup, key, -1, 0});
      return;
    }
    if ((ev.events & (EPOLLIN | EPOLLRDHUP)) != 0 && st.want_recv) {
      const ssize_t n = ::recv(st.fd, st.rbuf, st.rlen, 0);
      if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        st.want_recv = false;
        mark_dirty(key, st);
        push({BackendEvent::Kind::kRecv, key, -1, n >= 0 ? n : -errno});
      }
    }
    if ((ev.events & EPOLLOUT) != 0 && st.want_send) {
      const ssize_t n = ::send(st.fd, st.sbuf, st.slen, MSG_NOSIGNAL);
      if (n >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        st.want_send = false;
        mark_dirty(key, st);
        push({BackendEvent::Kind::kSend, key, -1, n >= 0 ? n : -errno});
      }
    }
  }

  void drain_accepts() {
    for (;;) {
      const int fd = accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd >= 0) {
        push({BackendEvent::Kind::kAccepted, 0, fd, 0});
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;  // per-connection hiccup: keep draining the backlog
      }
      // Persistent failure (EMFILE/ENFILE/ENOMEM/...): a level-triggered
      // listener would spin epoll_wait at 100% CPU. Deregister until the
      // caller frees an fd and resume_accepts() re-arms.
      PAX_LOG_ERROR("accept4: %s; pausing accepts", std::strerror(errno));
      if (epoll_ctl(ep_, EPOLL_CTL_DEL, listen_fd_, nullptr) == 0) {
        accepts_paused_ = true;
      }
      push({BackendEvent::Kind::kAcceptPaused, 0, -1, 0});
      return;
    }
  }

  int ep_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  bool accepts_paused_ = false;
  std::unordered_map<std::uint64_t, ConnState> conns_;
  std::deque<BackendEvent> ready_;
  std::vector<std::uint64_t> dirty_;
};

}  // namespace

std::unique_ptr<EventBackend> make_epoll_backend() {
  return std::make_unique<EpollBackend>();
}

}  // namespace pax::kv
