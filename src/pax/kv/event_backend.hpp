// EventBackend — the per-event-loop I/O engine behind KvServer.
//
// Each event loop owns exactly one backend instance, its SO_REUSEPORT
// listener, its wake eventfd, and its connections. The backend hides HOW
// socket I/O happens (epoll readiness + direct syscalls, or io_uring
// SQE/CQE batches) behind a uniform completion-style contract, so the
// server's connection state machine — frame parsing, in-flight ordering,
// commit modes — is written once and behaves byte-identically under both
// backends (tests/kv_server_test.cpp runs the full matrix).
//
// The contract:
//
//   * arm_recv()/arm_send() each request exactly ONE completion (kRecv /
//     kSend) carrying the byte count or -errno. At most one of each may be
//     outstanding per connection; buffers must stay valid (and unmoved)
//     until the completion is delivered.
//   * kAccepted delivers a new, non-blocking connection socket; the caller
//     then add_conn()s it under a caller-chosen id. On fd exhaustion the
//     backend pauses accepting and emits kAcceptPaused once; the caller
//     re-arms with resume_accepts() when an fd frees up.
//   * kWake is delivered when the wake eventfd was written (cross-thread
//     nudge); the backend drains the eventfd counter itself.
//   * kHangup reports peer disconnect noticed outside a recv (epoll
//     EPOLLHUP/EPOLLERR); io_uring surfaces the same condition as a
//     kRecv/kSend completion with result <= 0.
//   * remove_conn() cancels outstanding ops and closes the fd. If it
//     returns false, in-kernel ops are still draining: keep the
//     connection's buffers alive until the backend delivers kClosed for
//     that id (io_uring owns pointers into them until then). A true
//     return means fully quiesced (epoll always returns true).
//
// wait() blocks up to timeout_ms for events, delivering at most
// out.size() of them (the rest stay queued). io_uring batches every armed
// SQE into a single io_uring_submit_and_wait per wait() call.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "pax/common/status.hpp"

namespace pax::kv {

struct BackendEvent {
  enum class Kind : std::uint8_t {
    kAccepted,     // fd = new connection socket
    kRecv,         // conn_id, result = bytes (0 = EOF) or -errno
    kSend,         // conn_id, result = bytes or -errno
    kWake,         // wake eventfd was written
    kHangup,       // conn_id: peer hung up / socket error
    kClosed,       // conn_id: remove_conn() finished draining
    kAcceptPaused  // accepting paused (fd exhaustion) until resume_accepts
  };
  Kind kind = Kind::kWake;
  std::uint64_t conn_id = 0;
  int fd = -1;
  ssize_t result = 0;
};

class EventBackend {
 public:
  virtual ~EventBackend() = default;

  /// Registers the (already listening, SO_REUSEPORT) listener socket and
  /// the wake eventfd; starts accepting. Both fds stay owned by the
  /// caller and must outlive the backend.
  virtual Status init(int listen_fd, int wake_fd) = 0;

  /// Registers a connection socket under `conn_id` (caller-unique, >= 2).
  virtual Status add_conn(std::uint64_t conn_id, int fd) = 0;

  /// Cancels outstanding ops and closes `fd`. Returns true when fully
  /// quiesced; false = wait for kClosed before dropping buffers.
  virtual bool remove_conn(std::uint64_t conn_id, int fd) = 0;

  /// Requests one receive into [buf, buf+len) → one kRecv completion.
  virtual void arm_recv(std::uint64_t conn_id, int fd, void* buf,
                        std::size_t len) = 0;

  /// Requests one send of [buf, buf+len) → one kSend completion (partial
  /// writes allowed; the caller re-arms with the remainder).
  virtual void arm_send(std::uint64_t conn_id, int fd, const void* buf,
                        std::size_t len) = 0;

  /// Re-arms accepting after kAcceptPaused.
  virtual void resume_accepts() = 0;

  /// Blocks up to timeout_ms; fills `out` with ready events. Returns the
  /// number delivered (0 = timeout or EINTR).
  virtual std::size_t wait(std::span<BackendEvent> out, int timeout_ms) = 0;

  virtual const char* name() const = 0;
};

/// The readiness-based default: level-triggered epoll, direct
/// recv/send/accept4 syscalls performed at readiness time.
std::unique_ptr<EventBackend> make_epoll_backend();

/// The io_uring submission path (multishot accept, recv/send SQE batches,
/// one submit_and_wait per wait()). Returns nullptr when the build has no
/// io_uring support (PAX_WITH_LIBURING=OFF / no headers) or the running
/// kernel cannot provide the required ops.
std::unique_ptr<EventBackend> make_io_uring_backend();

/// True when make_io_uring_backend() would succeed on this kernel: probes
/// ring setup plus the RECV/SEND/ACCEPT/ASYNC_CANCEL/READ opcodes once
/// and caches the verdict.
bool io_uring_available();

}  // namespace pax::kv
