// PaxKV wire protocol — length-prefixed binary frames.
//
// Every message is one frame: a 4-byte little-endian body length followed
// by the body. Request and response bodies share an 8-byte fixed header so
// a parser can validate a frame from the first 12 bytes:
//
//   Request body:   u8 op | u8 flags | u16 key_len | u32 val_len
//                   | key bytes | val bytes
//   Response body:  u8 status | u8 flags | u16 reserved | u32 val_len
//                   | val bytes
//
// Ops: GET(1) DEL(3) carry a key only; PUT(2) carries key + value;
// STATS(4) carries neither and answers with a JSON document in the value.
// Responses are returned strictly in request order per connection, so a
// client pipelines by writing N frames and reading N frames — no request
// ids on the wire (docs/PROTOCOL.md, "PaxKV wire format").
//
// FrameParser is the server-side incremental decoder: feed() raw socket
// bytes, then drain next() until it reports no complete frame. Returned
// views alias the parser's buffer and stay valid until the next feed().
// Malformed input (oversized frame, bad op, lengths that disagree) is a
// kCorruption status — the connection is beyond resynchronization and must
// be closed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

#include "pax/common/status.hpp"

namespace pax::kv {

enum class OpCode : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
  kStats = 4,
};

enum class RespStatus : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kError = 2,
  kBadRequest = 3,
};

/// Frame-size discipline (enforced on both ends).
inline constexpr std::size_t kFrameHeaderBytes = 4;  // the body-length word
inline constexpr std::size_t kBodyHeaderBytes = 8;
inline constexpr std::size_t kMaxKeyLen = 4096;
inline constexpr std::size_t kMaxValLen = 1 << 20;
inline constexpr std::size_t kMaxBodyLen =
    kBodyHeaderBytes + kMaxKeyLen + kMaxValLen;

struct Request {
  OpCode op = OpCode::kGet;
  std::string_view key;
  std::string_view value;  // PUT only
};

struct Response {
  RespStatus status = RespStatus::kOk;
  std::string_view value;  // GET hit / STATS payload
};

/// Appends one encoded request frame to `out`.
void append_request(std::vector<std::byte>& out, OpCode op,
                    std::string_view key, std::string_view value = {});

/// Appends one encoded response frame to `out`.
void append_response(std::vector<std::byte>& out, RespStatus status,
                     std::string_view value = {});

/// Incremental frame decoder (one per connection). Parameterized over the
/// body decoder so the same buffering logic serves requests (server) and
/// responses (client).
class FrameParser {
 public:
  /// Appends raw bytes from the socket. Invalidates views returned by
  /// earlier next_*() calls.
  void feed(const std::byte* data, std::size_t len);

  /// Decodes the next complete request frame, if one is buffered.
  /// nullopt = need more bytes; error status = unrecoverable framing.
  Result<std::optional<Request>> next_request();

  /// Decodes the next complete response frame, if one is buffered.
  Result<std::optional<Response>> next_response();

  /// Bytes buffered but not yet consumed by a next_*() call.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  /// Frames the next body: validates the length word, returns a view of
  /// the body and consumes it. nullopt = incomplete.
  Result<std::optional<std::string_view>> next_body();

  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted on feed()
};

}  // namespace pax::kv
