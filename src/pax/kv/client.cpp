#include "pax/kv/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pax::kv {

Result<KvClient> KvClient::connect(const std::string& host,
                                   std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return io_error("socket failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return invalid_argument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd);
    return io_error(std::string("connect failed: ") + std::strerror(err));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return KvClient(fd);
}

KvClient::~KvClient() {
  if (fd_ >= 0) ::close(fd_);
}

KvClient::KvClient(KvClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      sendbuf_(std::move(other.sendbuf_)),
      parser_(std::move(other.parser_)) {}

KvClient& KvClient::operator=(KvClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    sendbuf_ = std::move(other.sendbuf_);
    parser_ = std::move(other.parser_);
  }
  return *this;
}

void KvClient::send_get(std::string_view key) {
  append_request(sendbuf_, OpCode::kGet, key);
}

void KvClient::send_put(std::string_view key, std::string_view value) {
  append_request(sendbuf_, OpCode::kPut, key, value);
}

void KvClient::send_del(std::string_view key) {
  append_request(sendbuf_, OpCode::kDel, key);
}

void KvClient::send_stats() {
  append_request(sendbuf_, OpCode::kStats, {});
}

Status KvClient::flush() {
  std::size_t off = 0;
  while (off < sendbuf_.size()) {
    const ssize_t n = send(fd_, sendbuf_.data() + off, sendbuf_.size() - off,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("send failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  sendbuf_.clear();
  return Status::ok();
}

Result<OwnedResponse> KvClient::recv_response() {
  for (;;) {
    auto resp = parser_.next_response();
    if (!resp.ok()) return resp.status();
    if (resp.value().has_value()) {
      OwnedResponse out;
      out.status = resp.value()->status;
      out.value.assign(resp.value()->value.data(),
                       resp.value()->value.size());
      return out;
    }
    std::byte buf[64 << 10];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return io_error("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error(std::string("recv failed: ") + std::strerror(errno));
    }
    parser_.feed(buf, static_cast<std::size_t>(n));
  }
}

Result<OwnedResponse> KvClient::roundtrip() {
  PAX_RETURN_IF_ERROR(flush());
  return recv_response();
}

Result<OwnedResponse> KvClient::get(std::string_view key) {
  send_get(key);
  return roundtrip();
}

Result<OwnedResponse> KvClient::put(std::string_view key,
                                    std::string_view value) {
  send_put(key, value);
  return roundtrip();
}

Result<OwnedResponse> KvClient::del(std::string_view key) {
  send_del(key);
  return roundtrip();
}

Result<OwnedResponse> KvClient::stats() {
  send_stats();
  return roundtrip();
}

}  // namespace pax::kv
