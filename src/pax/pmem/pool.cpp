#include "pax/pmem/pool.hpp"

#include <cstring>

#include "pax/common/check.hpp"
#include "pax/common/crc.hpp"

namespace pax::pmem {
namespace {

// Fixed header fields, stored at offset 0. The epoch and root cells live in
// their own cache lines (offsets 64 and 128) and are excluded from the CRC
// because they change after formatting.
struct PoolHeader {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t crc;  // masked CRC32C over the fields below
  std::uint64_t pool_size;
  std::uint64_t log_offset;
  std::uint64_t log_size;
  std::uint64_t data_offset;
  std::uint64_t data_size;
};
static_assert(sizeof(PoolHeader) == 56);
static_assert(sizeof(PoolHeader) <= kCacheLineSize,
              "header must fit one line so formatting is single-line atomic");

std::uint32_t header_crc(const PoolHeader& h) {
  // CRC covers everything after the crc field.
  const auto* base = reinterpret_cast<const std::byte*>(&h);
  const std::size_t skip = offsetof(PoolHeader, pool_size);
  std::uint32_t crc = crc32c(base, offsetof(PoolHeader, crc));
  crc = crc32c(base + skip, sizeof(PoolHeader) - skip, crc);
  return mask_crc(crc);
}

}  // namespace

Result<PmemPool> PmemPool::create(PmemDevice* device, std::size_t log_size) {
  PAX_CHECK(device != nullptr);
  if (log_size % kCacheLineSize != 0) {
    return invalid_argument("log extent size must be line-aligned");
  }
  const std::size_t min_size = kPoolHeaderSize + log_size + kCacheLineSize;
  if (device->size() < min_size) {
    return invalid_argument("device too small for requested pool geometry");
  }

  PoolHeader h{};
  h.magic = kPoolMagic;
  h.version = kPoolVersion;
  h.pool_size = device->size();
  h.log_offset = kPoolHeaderSize;
  h.log_size = log_size;
  h.data_offset = kPoolHeaderSize + log_size;
  h.data_size = device->size() - h.data_offset;
  h.crc = header_crc(h);

  device->store(0, std::as_bytes(std::span(&h, 1)));
  device->store_u64(kEpochCellOffset, 0);
  device->store_u64(kRootCellOffset, 0);
  device->flush_range(0, kPoolHeaderSize);
  device->drain();

  return PmemPool(device, h.log_offset, h.log_size, h.data_offset,
                  h.data_size);
}

Result<PmemPool> PmemPool::open(PmemDevice* device) {
  PAX_CHECK(device != nullptr);
  if (device->size() < kPoolHeaderSize) {
    return corruption("device smaller than a pool header");
  }

  PoolHeader h{};
  device->load(0, std::as_writable_bytes(std::span(&h, 1)));

  if (h.magic != kPoolMagic) return corruption("bad pool magic");
  if (h.version != kPoolVersion) return corruption("unsupported pool version");
  if (h.crc != header_crc(h)) return corruption("pool header CRC mismatch");
  if (h.pool_size != device->size()) {
    return corruption("pool size does not match device size");
  }
  if (h.log_offset != kPoolHeaderSize ||
      h.data_offset != h.log_offset + h.log_size ||
      h.data_offset + h.data_size != h.pool_size) {
    return corruption("pool extent geometry inconsistent");
  }

  return PmemPool(device, h.log_offset, h.log_size, h.data_offset,
                  h.data_size);
}

}  // namespace pax::pmem
