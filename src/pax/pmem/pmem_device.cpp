#include "pax/pmem/pmem_device.hpp"

#include <algorithm>
#include <cstring>

#include "pax/check/checker.hpp"
#include "pax/common/check.hpp"
#include "pax/common/rng.hpp"

namespace pax::pmem {
namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

// Per-line crash lottery. Every draw for a line comes from a generator
// seeded by (seed, line index) alone, so whether the line survives — and
// which of its 8-byte words tore — never depends on how many other pending
// lines exist or in what order a container iterates them. The same seed
// therefore resolves the same post-crash state across shard layouts,
// stripe counts, and offline CrashCut::resolve replays.
Xoshiro256 crash_line_rng(std::uint64_t seed, std::uint64_t line) {
  SplitMix64 mix(line + 0x9e3779b97f4a7c15ULL);
  return Xoshiro256(seed ^ mix.next());
}

// Resolves one pending line onto `dst` (its media bytes). Returns the
// number of media bytes written (0 when the line is dropped).
std::size_t resolve_crash_line(const CrashConfig& config, std::uint64_t line,
                               const LineData& data, std::byte* dst) {
  Xoshiro256 rng = crash_line_rng(config.seed, line);
  if (!rng.next_bool(config.line_survival_probability)) return 0;
  if (!config.tear_within_lines) {
    std::memcpy(dst, data.bytes.data(), kCacheLineSize);
    return kCacheLineSize;
  }
  // Torn line: each 8-byte word (the x86 power-fail atomicity unit)
  // independently made it out or did not.
  std::size_t written = 0;
  for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
    if (rng.next_bool(0.5)) {
      std::memcpy(dst + w, data.bytes.data() + w, 8);
      written += 8;
    }
  }
  return written;
}

}  // namespace

std::vector<std::byte> CrashCut::resolve(const CrashConfig& config) const {
  std::vector<std::byte> image = media;
  for (const auto& [line, data] : pending) {
    resolve_crash_line(config, line.value, data,
                       image.data() + line.byte_offset());
  }
  return image;
}

std::unique_ptr<PmemDevice> PmemDevice::create_in_memory(std::size_t bytes) {
  PAX_CHECK_MSG(bytes % kCacheLineSize == 0,
                "PM size must be line-aligned");
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(std::vector<std::byte>(bytes), bytes));
}

std::unique_ptr<PmemDevice> PmemDevice::create_in_memory_from(
    std::vector<std::byte> media) {
  PAX_CHECK_MSG(media.size() % kCacheLineSize == 0,
                "PM size must be line-aligned");
  const std::size_t bytes = media.size();
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(std::move(media), bytes));
}

Result<std::unique_ptr<PmemDevice>> PmemDevice::open_file(
    const std::string& path, std::size_t bytes, bool create) {
  if (bytes % kCacheLineSize != 0) {
    return invalid_argument("PM size must be line-aligned");
  }
  auto file = MmapFile::open(path, bytes, create);
  if (!file.ok()) return file.status();
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(std::move(file).value(), bytes));
}

PmemDevice::PmemDevice(std::vector<std::byte> heap_media, std::size_t size)
    : heap_media_(std::move(heap_media)), size_(size) {}

PmemDevice::PmemDevice(std::unique_ptr<MmapFile> file, std::size_t size)
    : file_(std::move(file)), size_(size) {}

std::span<std::byte> PmemDevice::media() {
  return file_ ? file_->data() : std::span<std::byte>(heap_media_);
}

std::span<const std::byte> PmemDevice::media() const {
  return file_ ? file_->data() : std::span<const std::byte>(heap_media_);
}

void PmemDevice::store(PoolOffset off, std::span<const std::byte> data) {
  PAX_CHECK(off + data.size() <= size_);
  stats_.stores.fetch_add(1, kRelaxed);
  stats_.bytes_stored.fetch_add(data.size(), kRelaxed);

  // Split the store across the lines it touches; each touched line becomes
  // (or stays) pending with its updated contents. Lines are handled one at
  // a time under their own shard lock — stores are not atomic across lines
  // (matching real hardware, where only 8-byte-aligned writes are).
  std::size_t done = 0;
  while (done < data.size()) {
    const PoolOffset cur = off + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, data.size() - done);

    {
      Shard& shard = shard_for(line);
      std::lock_guard lock(shard.mu);
      auto it = shard.pending.find(line);
      if (it == shard.pending.end()) {
        // First dirtying of this line: seed the pending copy from media.
        LineData d;
        std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
                    kCacheLineSize);
        it = shard.pending.emplace(line, d).first;
      }
      std::memcpy(it->second.bytes.data() + in_line, data.data() + done, n);
      // Emitted under the shard mutex so the checker's sequence numbers
      // respect the real per-line store/flush order.
      if (auto* chk = checker()) chk->on_store(line.value);
    }
    bump_crash_event();
    done += n;
  }
}

void PmemDevice::load(PoolOffset off, std::span<std::byte> out) const {
  PAX_CHECK(off + out.size() <= size_);
  stats_.loads.fetch_add(1, kRelaxed);

  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = off + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, out.size() - done);

    Shard& shard = shard_for(line);
    std::lock_guard lock(shard.mu);
    auto it = shard.pending.find(line);
    const std::byte* src =
        it != shard.pending.end()
            ? it->second.bytes.data() + in_line
            : media().data() + line.byte_offset() + in_line;
    std::memcpy(out.data() + done, src, n);
    done += n;
  }
}

void PmemDevice::store_line(LineIndex line, const LineData& data) {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  stats_.stores.fetch_add(1, kRelaxed);
  stats_.bytes_stored.fetch_add(kCacheLineSize, kRelaxed);
  {
    Shard& shard = shard_for(line);
    std::lock_guard lock(shard.mu);
    shard.pending[line] = data;
    if (auto* chk = checker()) chk->on_store(line.value);
  }
  bump_crash_event();
}

LineData PmemDevice::load_line(LineIndex line) const {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  stats_.loads.fetch_add(1, kRelaxed);
  Shard& shard = shard_for(line);
  std::lock_guard lock(shard.mu);
  if (auto it = shard.pending.find(line); it != shard.pending.end()) {
    return it->second;
  }
  LineData d;
  std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
              kCacheLineSize);
  return d;
}

void PmemDevice::store_u64(PoolOffset off, std::uint64_t value) {
  PAX_CHECK_MSG(off % 8 == 0, "u64 stores must be 8-byte aligned");
  store(off, std::as_bytes(std::span(&value, 1)));
}

std::uint64_t PmemDevice::load_u64(PoolOffset off) const {
  PAX_CHECK_MSG(off % 8 == 0, "u64 loads must be 8-byte aligned");
  std::uint64_t value = 0;
  load(off, std::as_writable_bytes(std::span(&value, 1)));
  return value;
}

void PmemDevice::flush_line_locked(Shard& shard, LineIndex line) {
  auto it = shard.pending.find(line);
  if (it == shard.pending.end()) {
    stats_.empty_flushes.fetch_add(1, kRelaxed);
    if (auto* chk = checker()) chk->on_flush(line.value, /*empty=*/true);
    return;
  }
  std::memcpy(media().data() + line.byte_offset(), it->second.bytes.data(),
              kCacheLineSize);
  shard.pending.erase(it);
  stats_.line_flushes.fetch_add(1, kRelaxed);
  stats_.media_bytes_written.fetch_add(kCacheLineSize, kRelaxed);
  // XPLine accounting: a flush touches one 256 B internal block; flushes to
  // the same block combine in the XPBuffer until the next drain. Block and
  // line live in the same shard (sharding is by block), so the window needs
  // no extra lock.
  if (shard.xpline_window.insert(line.byte_offset() / 256).second) {
    stats_.xpline_blocks_written.fetch_add(1, kRelaxed);
  }
  if (auto* chk = checker()) chk->on_flush(line.value, /*empty=*/false);
}

void PmemDevice::flush_line(LineIndex line) {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  // Repair interception first: a hoisted log flush must reach the media
  // (and the event stream) before the data flush it guards. The shim
  // no-ops re-entrant calls, so its own flush_line calls pass through.
  if (auto* shim = repair_shim()) shim->before_flush(*this, line);
  {
    Shard& shard = shard_for(line);
    std::lock_guard lock(shard.mu);
    flush_line_locked(shard, line);
  }
  bump_crash_event();
}

void PmemDevice::flush_range(PoolOffset off, std::size_t len) {
  PAX_CHECK(off + len <= size_);
  if (len == 0) return;
  const LineIndex first = LineIndex::containing(off);
  const LineIndex last = LineIndex::containing(off + len - 1);
  for (std::uint64_t l = first.value; l <= last.value; ++l) {
    flush_line(LineIndex{l});
  }
}

void PmemDevice::drain() {
  stats_.drains.fetch_add(1, kRelaxed);
  // The XPBuffer write-combining window closes on every shard.
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.xpline_window.clear();
  }
  // After the sweep: every flush whose shard lock this drain passed through
  // is sequenced before the drain event.
  if (auto* chk = checker()) chk->on_drain();
  bump_crash_event();
}

void PmemDevice::atomic_durable_store_u64(PoolOffset off,
                                          std::uint64_t value) {
  store_u64(off, value);
  flush_line(LineIndex::containing(off));
  drain();
}

void PmemDevice::crash(const CrashConfig& config) {
  // Stop-the-world: hold every shard while the lottery runs so the torn
  // state is a consistent cut of the overlay.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock(shards_[i].mu);
  }
  for (auto& shard : shards_) {
    for (const auto& [line, data] : shard.pending) {
      const std::size_t written = resolve_crash_line(
          config, line.value, data, media().data() + line.byte_offset());
      if (written > 0) {
        stats_.media_bytes_written.fetch_add(written, kRelaxed);
      }
    }
    shard.pending.clear();
  }
  if (auto* chk = checker()) chk->on_crash();
}

void PmemDevice::bump_crash_event() {
  const std::uint64_t n = crash_events_.fetch_add(1, kRelaxed) + 1;
  if (n == crash_arm_.load(kRelaxed)) capture_crash_cut(n);
}

void PmemDevice::arm_crash_point(std::uint64_t after_events) {
  PAX_CHECK_MSG(after_events > crash_events_.load(kRelaxed),
                "crash point already passed");
  std::lock_guard lock(crash_cut_mu_);
  crash_cut_.reset();
  crash_arm_.store(after_events, kRelaxed);
}

void PmemDevice::capture_crash_cut(std::uint64_t at_event) {
  // Stop-the-world copy under every shard lock (same discipline as
  // crash()). The triggering operation released its shard lock before
  // bump_crash_event, so no lock is held twice.
  std::array<std::unique_lock<std::mutex>, kShards> locks;
  for (std::size_t i = 0; i < kShards; ++i) {
    locks[i] = std::unique_lock(shards_[i].mu);
  }
  CrashCut cut;
  cut.after_events = at_event;
  cut.media.assign(media().begin(), media().end());
  for (const auto& shard : shards_) {
    for (const auto& [line, data] : shard.pending) {
      cut.pending.emplace_back(line, data);
    }
  }
  std::sort(cut.pending.begin(), cut.pending.end(),
            [](const auto& a, const auto& b) {
              return a.first.value < b.first.value;
            });
  std::lock_guard lock(crash_cut_mu_);
  crash_cut_ = std::move(cut);
  crash_arm_.store(0, kRelaxed);
}

std::optional<CrashCut> PmemDevice::take_crash_cut() {
  std::lock_guard lock(crash_cut_mu_);
  std::optional<CrashCut> out = std::move(crash_cut_);
  crash_cut_.reset();
  return out;
}

void PmemDevice::note_epoch_commit(std::uint64_t epoch) {
  // Repair interception: inserted flush+drain actions land here, strictly
  // before the kEpochCommit event and the epoch-cell store that follows.
  if (auto* shim = repair_shim()) shim->before_epoch_commit(*this, epoch);
  if (auto* chk = checker()) chk->on_epoch_commit(epoch);
}

std::size_t PmemDevice::pending_line_count() const {
  std::size_t total = 0;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    total += shard.pending.size();
  }
  return total;
}

LineData PmemDevice::durable_line(LineIndex line) const {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  Shard& shard = shard_for(line);
  std::lock_guard lock(shard.mu);
  LineData d;
  std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
              kCacheLineSize);
  return d;
}

void PmemDevice::read_durable(PoolOffset off, std::span<std::byte> out) const {
  PAX_CHECK(off + out.size() <= size_);
  std::memcpy(out.data(), media().data() + off, out.size());
}

PmemStats PmemDevice::stats() const {
  PmemStats out;
  out.stores = stats_.stores.load(kRelaxed);
  out.bytes_stored = stats_.bytes_stored.load(kRelaxed);
  out.loads = stats_.loads.load(kRelaxed);
  out.line_flushes = stats_.line_flushes.load(kRelaxed);
  out.empty_flushes = stats_.empty_flushes.load(kRelaxed);
  out.drains = stats_.drains.load(kRelaxed);
  out.media_bytes_written = stats_.media_bytes_written.load(kRelaxed);
  out.xpline_blocks_written = stats_.xpline_blocks_written.load(kRelaxed);
  return out;
}

void PmemDevice::reset_stats() {
  stats_.stores.store(0, kRelaxed);
  stats_.bytes_stored.store(0, kRelaxed);
  stats_.loads.store(0, kRelaxed);
  stats_.line_flushes.store(0, kRelaxed);
  stats_.empty_flushes.store(0, kRelaxed);
  stats_.drains.store(0, kRelaxed);
  stats_.media_bytes_written.store(0, kRelaxed);
  stats_.xpline_blocks_written.store(0, kRelaxed);
}

}  // namespace pax::pmem
