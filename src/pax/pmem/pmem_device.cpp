#include "pax/pmem/pmem_device.hpp"

#include <algorithm>
#include <cstring>

#include "pax/common/check.hpp"
#include "pax/common/rng.hpp"

namespace pax::pmem {

std::unique_ptr<PmemDevice> PmemDevice::create_in_memory(std::size_t bytes) {
  PAX_CHECK_MSG(bytes % kCacheLineSize == 0,
                "PM size must be line-aligned");
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(std::vector<std::byte>(bytes), bytes));
}

Result<std::unique_ptr<PmemDevice>> PmemDevice::open_file(
    const std::string& path, std::size_t bytes, bool create) {
  if (bytes % kCacheLineSize != 0) {
    return invalid_argument("PM size must be line-aligned");
  }
  auto file = MmapFile::open(path, bytes, create);
  if (!file.ok()) return file.status();
  return std::unique_ptr<PmemDevice>(
      new PmemDevice(std::move(file).value(), bytes));
}

PmemDevice::PmemDevice(std::vector<std::byte> heap_media, std::size_t size)
    : heap_media_(std::move(heap_media)), size_(size) {}

PmemDevice::PmemDevice(std::unique_ptr<MmapFile> file, std::size_t size)
    : file_(std::move(file)), size_(size) {}

std::span<std::byte> PmemDevice::media() {
  return file_ ? file_->data() : std::span<std::byte>(heap_media_);
}

std::span<const std::byte> PmemDevice::media() const {
  return file_ ? file_->data() : std::span<const std::byte>(heap_media_);
}

void PmemDevice::store(PoolOffset off, std::span<const std::byte> data) {
  PAX_CHECK(off + data.size() <= size_);
  std::lock_guard lock(mu_);
  ++stats_.stores;
  stats_.bytes_stored += data.size();

  // Split the store across the lines it touches; each touched line becomes
  // (or stays) pending with its updated contents.
  std::size_t done = 0;
  while (done < data.size()) {
    const PoolOffset cur = off + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, data.size() - done);

    auto it = pending_.find(line);
    if (it == pending_.end()) {
      // First dirtying of this line: seed the pending copy from media.
      LineData d;
      std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
                  kCacheLineSize);
      it = pending_.emplace(line, d).first;
    }
    std::memcpy(it->second.bytes.data() + in_line, data.data() + done, n);
    done += n;
  }
}

void PmemDevice::load(PoolOffset off, std::span<std::byte> out) const {
  PAX_CHECK(off + out.size() <= size_);
  std::lock_guard lock(mu_);
  ++stats_.loads;

  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = off + done;
    const LineIndex line = LineIndex::containing(cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t n =
        std::min(kCacheLineSize - in_line, out.size() - done);

    auto it = pending_.find(line);
    const std::byte* src =
        it != pending_.end()
            ? it->second.bytes.data() + in_line
            : media().data() + line.byte_offset() + in_line;
    std::memcpy(out.data() + done, src, n);
    done += n;
  }
}

void PmemDevice::store_line(LineIndex line, const LineData& data) {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  std::lock_guard lock(mu_);
  ++stats_.stores;
  stats_.bytes_stored += kCacheLineSize;
  pending_[line] = data;
}

LineData PmemDevice::load_line(LineIndex line) const {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  std::lock_guard lock(mu_);
  ++stats_.loads;
  if (auto it = pending_.find(line); it != pending_.end()) return it->second;
  LineData d;
  std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
              kCacheLineSize);
  return d;
}

void PmemDevice::store_u64(PoolOffset off, std::uint64_t value) {
  PAX_CHECK_MSG(off % 8 == 0, "u64 stores must be 8-byte aligned");
  store(off, std::as_bytes(std::span(&value, 1)));
}

std::uint64_t PmemDevice::load_u64(PoolOffset off) const {
  PAX_CHECK_MSG(off % 8 == 0, "u64 loads must be 8-byte aligned");
  std::uint64_t value = 0;
  load(off, std::as_writable_bytes(std::span(&value, 1)));
  return value;
}

void PmemDevice::flush_line_locked(LineIndex line) {
  auto it = pending_.find(line);
  if (it == pending_.end()) {
    ++stats_.empty_flushes;
    return;
  }
  std::memcpy(media().data() + line.byte_offset(), it->second.bytes.data(),
              kCacheLineSize);
  pending_.erase(it);
  ++stats_.line_flushes;
  stats_.media_bytes_written += kCacheLineSize;
  // XPLine accounting: a flush touches one 256 B internal block; flushes to
  // the same block combine in the XPBuffer until the next drain.
  if (xpline_window_.insert(line.byte_offset() / 256).second) {
    ++stats_.xpline_blocks_written;
  }
}

void PmemDevice::flush_line(LineIndex line) {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  std::lock_guard lock(mu_);
  flush_line_locked(line);
}

void PmemDevice::flush_range(PoolOffset off, std::size_t len) {
  PAX_CHECK(off + len <= size_);
  if (len == 0) return;
  std::lock_guard lock(mu_);
  const LineIndex first = LineIndex::containing(off);
  const LineIndex last = LineIndex::containing(off + len - 1);
  for (std::uint64_t l = first.value; l <= last.value; ++l) {
    flush_line_locked(LineIndex{l});
  }
}

void PmemDevice::drain() {
  std::lock_guard lock(mu_);
  ++stats_.drains;
  xpline_window_.clear();  // the XPBuffer write-combining window closes
}

void PmemDevice::atomic_durable_store_u64(PoolOffset off,
                                          std::uint64_t value) {
  store_u64(off, value);
  flush_line(LineIndex::containing(off));
  drain();
}

void PmemDevice::crash(const CrashConfig& config) {
  std::lock_guard lock(mu_);
  Xoshiro256 rng(config.seed);
  for (const auto& [line, data] : pending_) {
    if (!rng.next_bool(config.line_survival_probability)) continue;
    std::byte* dst = media().data() + line.byte_offset();
    if (!config.tear_within_lines) {
      std::memcpy(dst, data.bytes.data(), kCacheLineSize);
      stats_.media_bytes_written += kCacheLineSize;
      continue;
    }
    // Torn line: each 8-byte word (the x86 power-fail atomicity unit)
    // independently made it out or did not.
    for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
      if (rng.next_bool(0.5)) {
        std::memcpy(dst + w, data.bytes.data() + w, 8);
        stats_.media_bytes_written += 8;
      }
    }
  }
  pending_.clear();
}

std::size_t PmemDevice::pending_line_count() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

LineData PmemDevice::durable_line(LineIndex line) const {
  PAX_CHECK(line.byte_offset() + kCacheLineSize <= size_);
  std::lock_guard lock(mu_);
  LineData d;
  std::memcpy(d.bytes.data(), media().data() + line.byte_offset(),
              kCacheLineSize);
  return d;
}

PmemStats PmemDevice::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void PmemDevice::reset_stats() {
  std::lock_guard lock(mu_);
  stats_ = PmemStats{};
}

}  // namespace pax::pmem
