// RAII wrapper for a file-backed memory mapping, the stand-in for a
// DAX-mapped PM pool file. The mapping survives process kill in the page
// cache, which is what makes the fork-and-kill crash-recovery example real.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "pax/common/status.hpp"

namespace pax::pmem {

class MmapFile {
 public:
  /// Opens (and optionally creates/extends) `path` and maps `size` bytes
  /// shared read/write.
  static Result<std::unique_ptr<MmapFile>> open(const std::string& path,
                                                std::size_t size, bool create);

  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::span<std::byte> data() { return {base_, size_}; }
  std::span<const std::byte> data() const { return {base_, size_}; }
  std::size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// msync the full mapping (used sparingly; kill-based crash tests rely on
  /// page-cache survival, power-loss durability would rely on this).
  Status sync();

 private:
  MmapFile(std::string path, int fd, std::byte* base, std::size_t size)
      : path_(std::move(path)), fd_(fd), base_(base), size_(size) {}

  std::string path_;
  int fd_ = -1;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pax::pmem
