// Simulated persistent-memory DIMM with an explicit persistence domain.
//
// On real PM hardware (Optane with ADR), a store becomes durable only once
// its cache line leaves the CPU caches and reaches the memory controller's
// write-pending queue. Everything still sitting in CPU caches at power loss
// is gone. PmemDevice models exactly that visibility split:
//
//   store()       — data enters the *pending* overlay (≈ CPU caches).
//   load()        — sees pending ∪ media (a core observes its own stores).
//   flush_line()  — CLWB: pending line → media (≈ ADR persistence domain).
//   drain()       — SFENCE: ordering point; counted for cost models.
//   crash()       — discards the pending overlay, optionally letting a random
//                   subset of lines (or 8-byte words within lines: the x86
//                   power-fail atomicity unit) reach media first, which is
//                   how tests produce torn records for recovery to handle.
//
// The media can live in DRAM (unit tests) or in a file mapping (examples and
// kill-based crash tests, where losing the in-DRAM pending overlay on process
// death is a *real* crash of the simulated persistence domain).
//
// All mutating entry points are internally synchronized, and the pending
// overlay is *sharded* by 256 B internal block (the XPLine), so the striped
// PAX device's data path and fan-out workers touch disjoint lines without
// convoying on one device-wide mutex. Counters are atomics; only drain() and
// crash() sweep every shard (both are serialized-tail / test-only paths).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <unordered_set>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/mmap_file.hpp"

namespace pax::check {
class Checker;
}  // namespace pax::check

namespace pax::pmem {

/// Counters for persistence-cost accounting and write-amplification studies.
struct PmemStats {
  std::uint64_t stores = 0;            // store() calls
  std::uint64_t bytes_stored = 0;      // logical bytes written by the app
  std::uint64_t loads = 0;             // load() calls
  std::uint64_t line_flushes = 0;      // flush_line() with pending data
  std::uint64_t empty_flushes = 0;     // flush_line() finding nothing pending
  std::uint64_t drains = 0;            // drain() calls (SFENCE count)
  std::uint64_t media_bytes_written = 0;  // bytes that reached media
  /// Optane's internal 256 B write granularity ("XPLine", Yang et al.
  /// FAST'20 §4.1): distinct 256 B internal blocks written, where flushes
  /// that land in the same block between two drains combine (the XPBuffer).
  /// xpline_blocks_written × 256 / media_bytes_written is the device's
  /// internal write amplification — 1× for sequential flush patterns, up
  /// to 4× for random 64 B flushes.
  std::uint64_t xpline_blocks_written = 0;
};

/// How a simulated crash treats the pending overlay.
struct CrashConfig {
  /// Probability that a whole pending line reached media before the crash.
  double line_survival_probability = 0.0;
  /// If true, a "surviving" line may itself be torn: each 8-byte word
  /// independently reaches media with probability 0.5.
  bool tear_within_lines = false;
  /// Seed for the crash lottery; same seed → same torn state.
  std::uint64_t seed = 1;

  static CrashConfig drop_all() { return {}; }
  static CrashConfig random(double p, std::uint64_t seed) {
    return {p, false, seed};
  }
  static CrashConfig torn(double p, std::uint64_t seed) {
    return {p, true, seed};
  }
};

/// A consistent cut of the device captured after the N-th persistence event
/// (arm_crash_point): the media image plus every line still in the pending
/// overlay at that instant. resolve() runs the crash lottery over the cut,
/// yielding the post-crash media image for any CrashConfig — one captured
/// cut serves drop_all, random, and torn without re-running the workload.
struct CrashCut {
  std::uint64_t after_events = 0;
  std::vector<std::byte> media;
  /// Pending overlay at the cut, sorted by line index.
  std::vector<std::pair<LineIndex, LineData>> pending;

  std::vector<std::byte> resolve(const CrashConfig& config) const;
};

class PmemDevice;

/// Interception points for the automated-repair layer (check/repair.hpp):
/// a shim attached to the device gets a callback immediately before the
/// actions a RepairPlan can patch — the epoch-commit note (where "insert
/// flush_line(L)+drain before commit" lands) and a line flush (where
/// "hoist log_flush above the write-back of L" lands). Implementations may
/// call back into the device (flush_line/flush_range/drain); they must
/// guard against the recursion those calls cause.
class PmemRepairShim {
 public:
  virtual ~PmemRepairShim() = default;
  virtual void before_epoch_commit(PmemDevice& dev, std::uint64_t epoch) = 0;
  virtual void before_flush(PmemDevice& dev, LineIndex line) = 0;
};

class PmemDevice {
 public:
  /// Media held in DRAM; contents vanish with the object. For unit tests.
  static std::unique_ptr<PmemDevice> create_in_memory(std::size_t bytes);

  /// Media backed by a file mapping (the DAX-pool stand-in).
  static Result<std::unique_ptr<PmemDevice>> open_file(const std::string& path,
                                                       std::size_t bytes,
                                                       bool create);

  /// In-memory device whose media starts as a copy of `media` — typically a
  /// CrashCut::resolve image: the post-crash reincarnation crash-point
  /// exploration recovers and audits (check/crashpoint.hpp).
  static std::unique_ptr<PmemDevice> create_in_memory_from(
      std::vector<std::byte> media);

  std::size_t size() const { return size_; }
  std::size_t num_lines() const { return size_ / kCacheLineSize; }

  // --- CPU-visible data path -------------------------------------------

  /// Writes `data` at byte offset `off` (may span lines) into the pending
  /// overlay.
  void store(PoolOffset off, std::span<const std::byte> data);

  /// Reads the CPU-visible value (pending overlay over media).
  void load(PoolOffset off, std::span<std::byte> out) const;

  /// Whole-line variants used by the device model and the undo logger.
  void store_line(LineIndex line, const LineData& data);
  LineData load_line(LineIndex line) const;

  /// Convenience 64-bit accessors (offset need not be line-aligned but must
  /// be 8-byte aligned, the power-fail atomicity unit).
  void store_u64(PoolOffset off, std::uint64_t value);
  std::uint64_t load_u64(PoolOffset off) const;

  // --- Persistence path -------------------------------------------------

  /// CLWB: makes the pending contents of `line` durable.
  void flush_line(LineIndex line);

  /// Flushes every line overlapping [off, off+len).
  void flush_range(PoolOffset off, std::size_t len);

  /// SFENCE. In this synchronous model flush_line already reached media, so
  /// drain is an accounting/ordering marker only — but callers must still
  /// place it correctly: crash tests verify durability only via flush+drain
  /// sequences.
  void drain();

  /// store_u64 + flush + drain: the 8-byte power-fail-atomic write used for
  /// epoch-cell commits.
  void atomic_durable_store_u64(PoolOffset off, std::uint64_t value);

  // --- Crash machinery (tests and harnesses) ----------------------------

  /// Simulates power loss: resolves the pending overlay per `config`, then
  /// clears it. The device remains usable and now shows post-crash media.
  /// The lottery draws per line from (config.seed, line index) alone, so
  /// the same seed produces the same torn state no matter how the overlay
  /// is sharded or iterated.
  void crash(const CrashConfig& config);

  /// Count of crash-countable persistence events executed so far: one per
  /// line a store() touches, one per flush_line (empty or not), one per
  /// drain(). Deterministic workloads replay to identical counts, which is
  /// what makes "crash after event N" a stable name for a machine state
  /// across re-executions (check/crashpoint.hpp).
  std::uint64_t crash_events() const {
    return crash_events_.load(std::memory_order_relaxed);
  }

  /// Arms a one-shot consistent-cut capture: when crash_events() reaches
  /// `after_events` the media image and pending overlay are snapshotted
  /// (all shard locks held, taken after the triggering operation released
  /// its own) into the cut retrievable with take_crash_cut(). Equivalent to
  /// a crash between device operations — the only granularity at which a
  /// single-threaded workload can crash.
  void arm_crash_point(std::uint64_t after_events);

  /// The cut captured by an armed crash point, if the workload ran that
  /// far. Each arm yields at most one cut; taking it clears the slot.
  std::optional<CrashCut> take_crash_cut();

  /// Number of lines with not-yet-durable data.
  std::size_t pending_line_count() const;

  /// Reads what media alone holds (ignoring the pending overlay) — what a
  /// post-crash observer would see. For test assertions.
  LineData durable_line(LineIndex line) const;

  /// Bulk durable read of [off, off+out.size()): media bytes only, no
  /// pending overlay. Unlocked — call from a quiesced point (concurrent
  /// flushes could tear the copy).
  void read_durable(PoolOffset off, std::span<std::byte> out) const;

  PmemStats stats() const;
  void reset_stats();

  // --- PaxCheck attach point --------------------------------------------

  /// Attaches (or detaches, with nullptr) a PaxCheck observer. The device is
  /// the root of the instrumented stack: upper layers (undo logger, PAX
  /// device, libpax runtime) discover the checker through their PmemDevice.
  /// The checker must outlive all use of this device; attach before
  /// concurrent traffic starts or quiesce first.
  void set_checker(check::Checker* checker) {
    checker_.store(checker, std::memory_order_release);
  }
  check::Checker* checker() const {
    return checker_.load(std::memory_order_acquire);
  }

  /// Attaches (or detaches, with nullptr) a repair shim. Same lifetime and
  /// quiescence contract as set_checker. The shim fires on every
  /// flush_line and note_epoch_commit, *before* the underlying action and
  /// before its checker event — inserted ops are therefore ordered ahead
  /// of the action they repair, in the trace and on the media.
  void set_repair_shim(PmemRepairShim* shim) {
    repair_shim_.store(shim, std::memory_order_release);
  }
  PmemRepairShim* repair_shim() const {
    return repair_shim_.load(std::memory_order_acquire);
  }

  /// Tells an attached checker that the caller is about to commit `epoch`
  /// via the 8-byte power-fail-atomic store (pool.hpp). Emitted *before*
  /// that store so the epoch cell's own store/flush/drain are not flagged
  /// as unflushed-at-commit.
  void note_epoch_commit(std::uint64_t epoch);

 private:
  PmemDevice(std::vector<std::byte> heap_media, std::size_t size);
  PmemDevice(std::unique_ptr<MmapFile> file, std::size_t size);

  // The overlay is partitioned by 256 B internal block (XPLine), i.e. four
  // consecutive cache lines share a shard — which keeps each shard's
  // XPBuffer write-combining window self-contained. Media bytes themselves
  // need no lock: concurrent flushes of different lines touch disjoint
  // ranges.
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<LineIndex, LineData> pending;
    // 256 B blocks of this shard written since the last drain.
    std::unordered_set<std::uint64_t> xpline_window;
  };

  Shard& shard_for(LineIndex line) const {
    return shards_[(line.value / kLinesPerXpline) % kShards];
  }
  static constexpr std::uint64_t kLinesPerXpline = 256 / kCacheLineSize;

  std::span<std::byte> media();
  std::span<const std::byte> media() const;

  void flush_line_locked(Shard& shard, LineIndex line);

  /// Advances the crash-event counter; captures the armed cut when the
  /// counter hits it. Called with no shard lock held.
  void bump_crash_event();
  void capture_crash_cut(std::uint64_t at_event);

  std::vector<std::byte> heap_media_;    // in-memory mode
  std::unique_ptr<MmapFile> file_;       // file mode
  std::size_t size_;

  mutable std::array<Shard, kShards> shards_;

  // Counters live outside the shards (an op may span several) as atomics;
  // stats() snapshots them.
  struct AtomicStats {
    std::atomic<std::uint64_t> stores{0};
    std::atomic<std::uint64_t> bytes_stored{0};
    std::atomic<std::uint64_t> loads{0};
    std::atomic<std::uint64_t> line_flushes{0};
    std::atomic<std::uint64_t> empty_flushes{0};
    std::atomic<std::uint64_t> drains{0};
    std::atomic<std::uint64_t> media_bytes_written{0};
    std::atomic<std::uint64_t> xpline_blocks_written{0};
  };
  mutable AtomicStats stats_;  // loads are counted from const readers

  // Crash-point machinery: the counter always runs (one relaxed add per
  // countable event); the arm/cut slots are touched only by harnesses.
  std::atomic<std::uint64_t> crash_events_{0};
  std::atomic<std::uint64_t> crash_arm_{0};  // 0 = disarmed
  std::mutex crash_cut_mu_;
  std::optional<CrashCut> crash_cut_;

  std::atomic<check::Checker*> checker_{nullptr};
  std::atomic<PmemRepairShim*> repair_shim_{nullptr};
};

}  // namespace pax::pmem
