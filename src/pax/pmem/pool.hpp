// Pool layout on simulated PM, the equivalent of the paper's DAX pool file.
//
//   [page 0]   header: magic, version, extent geometry, CRC
//              + epoch cell   (own cache line, offset 64)
//              + root cell    (own cache line, offset 128)
//   [log extent]   epoch-tagged undo log (see device/undo_log.hpp)
//   [data extent]  the persistent structure (vPM) itself
//
// The epoch cell is the pool's commit record: persist() finishes by writing
// the new epoch number here with an 8-byte power-fail-atomic durable store
// (§3.3 "the device writes the current epoch number to a special location in
// the structure's pool file"). Recovery compares log-record epoch tags
// against this cell. The root cell stores the application/allocator root
// offset, also updated with an 8-byte atomic durable store.
#pragma once

#include <cstdint>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::pmem {

inline constexpr std::uint64_t kPoolMagic = 0x314c4f4f50584150ULL;  // "PAXPOOL1"
inline constexpr std::uint32_t kPoolVersion = 1;
inline constexpr PoolOffset kEpochCellOffset = 64;
inline constexpr PoolOffset kRootCellOffset = 128;
inline constexpr std::size_t kPoolHeaderSize = kPageSize;

/// Non-owning view of a formatted pool on a PmemDevice.
class PmemPool {
 public:
  /// Formats `device` with a fresh pool: a `log_size`-byte undo-log extent
  /// followed by a data extent filling the rest. Epoch starts at 0.
  static Result<PmemPool> create(PmemDevice* device, std::size_t log_size);

  /// Validates the header (magic, version, CRC, geometry) and opens an
  /// existing pool.
  static Result<PmemPool> open(PmemDevice* device);

  PmemDevice* device() const { return device_; }

  /// The most recently committed snapshot epoch (durable value).
  Epoch committed_epoch() const { return device_->load_u64(kEpochCellOffset); }

  /// Commits `epoch` as the newest durable snapshot (8 B atomic + flush +
  /// drain). Must be called only after every undo record and write-back of
  /// the epoch is durable.
  void commit_epoch(Epoch epoch) {
    device_->note_epoch_commit(epoch);
    device_->atomic_durable_store_u64(kEpochCellOffset, epoch);
  }

  /// Application/allocator root offset (within the data extent), durable.
  PoolOffset root() const { return device_->load_u64(kRootCellOffset); }
  void set_root(PoolOffset off) {
    device_->atomic_durable_store_u64(kRootCellOffset, off);
  }

  PoolOffset log_offset() const { return log_offset_; }
  std::size_t log_size() const { return log_size_; }
  PoolOffset data_offset() const { return data_offset_; }
  std::size_t data_size() const { return data_size_; }

 private:
  PmemPool(PmemDevice* device, PoolOffset log_offset, std::size_t log_size,
           PoolOffset data_offset, std::size_t data_size)
      : device_(device),
        log_offset_(log_offset),
        log_size_(log_size),
        data_offset_(data_offset),
        data_size_(data_size) {}

  PmemDevice* device_;
  PoolOffset log_offset_;
  std::size_t log_size_;
  PoolOffset data_offset_;
  std::size_t data_size_;
};

}  // namespace pax::pmem
