#include "pax/pmem/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pax::pmem {

Result<std::unique_ptr<MmapFile>> MmapFile::open(const std::string& path,
                                                 std::size_t size,
                                                 bool create) {
  int flags = O_RDWR | O_CLOEXEC;
  if (create) flags |= O_CREAT;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status(StatusCode::kIoError,
                  "open(" + path + "): " + std::strerror(errno));
  }

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return io_error("fstat(" + path + "): " + std::strerror(errno));
  }
  if (static_cast<std::size_t>(st.st_size) < size) {
    if (!create) {
      ::close(fd);
      return io_error("pool file " + path + " smaller than requested size");
    }
    if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      ::close(fd);
      return io_error("ftruncate(" + path + "): " + std::strerror(errno));
    }
  }

  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    return io_error("mmap(" + path + "): " + std::strerror(errno));
  }

  return std::unique_ptr<MmapFile>(
      new MmapFile(path, fd, static_cast<std::byte*>(base), size));
}

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

Status MmapFile::sync() {
  if (::msync(base_, size_, MS_SYNC) != 0) {
    return io_error("msync(" + path_ + "): " + std::strerror(errno));
  }
  return Status::ok();
}

}  // namespace pax::pmem
