// Minimal leveled logging to stderr. Off by default above kWarn so tests and
// benches stay quiet; set PAX_LOG_LEVEL=debug|info|warn|error in the
// environment or call set_log_level() to change.
#pragma once

#include <cstdio>
#include <string>

namespace pax {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Current threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace internal {
void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg);
bool log_enabled(LogLevel level);
std::string format_log(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace internal

#define PAX_LOG(level, ...)                                              \
  do {                                                                   \
    if (::pax::internal::log_enabled(level)) {                           \
      ::pax::internal::log_message(                                      \
          level, __FILE__, __LINE__,                                     \
          ::pax::internal::format_log(__VA_ARGS__));                     \
    }                                                                    \
  } while (0)

#define PAX_LOG_DEBUG(...) PAX_LOG(::pax::LogLevel::kDebug, __VA_ARGS__)
#define PAX_LOG_INFO(...) PAX_LOG(::pax::LogLevel::kInfo, __VA_ARGS__)
#define PAX_LOG_WARN(...) PAX_LOG(::pax::LogLevel::kWarn, __VA_ARGS__)
#define PAX_LOG_ERROR(...) PAX_LOG(::pax::LogLevel::kError, __VA_ARGS__)

}  // namespace pax
