// Core value types shared across all PAX modules.
//
// PAX reasons about memory at CPU cache-line granularity (64 bytes): the
// device observes coherence events per line, logs undo records per line, and
// writes back per line. These types make line addressing explicit so that
// byte offsets and line indices can never be confused.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>

namespace pax {

/// Size of one CPU cache line / coherence unit, in bytes.
inline constexpr std::size_t kCacheLineSize = 64;

/// Size of one virtual-memory page (x86-64 default), in bytes. Used by the
/// page-fault frontends (libpax vPM region, pagewal baseline).
inline constexpr std::size_t kPageSize = 4096;

/// Lines per page; useful for write-amplification accounting.
inline constexpr std::size_t kLinesPerPage = kPageSize / kCacheLineSize;

/// Snapshot epoch number. Epoch 0 is the "empty pool" snapshot; the first
/// mutations belong to epoch 1, which becomes durable when persist() commits
/// the epoch cell with value 1.
using Epoch = std::uint64_t;

/// A byte offset into a pool / vPM region. Offsets are used rather than raw
/// pointers wherever the value must be meaningful across process restarts.
using PoolOffset = std::uint64_t;

/// Index of a cache line within a pool (offset / kCacheLineSize).
struct LineIndex {
  std::uint64_t value = 0;

  constexpr PoolOffset byte_offset() const { return value * kCacheLineSize; }
  constexpr auto operator<=>(const LineIndex&) const = default;

  static constexpr LineIndex containing(PoolOffset off) {
    return LineIndex{off / kCacheLineSize};
  }
};

/// Index of a 4 KiB page within a pool.
struct PageIndex {
  std::uint64_t value = 0;

  constexpr PoolOffset byte_offset() const { return value * kPageSize; }
  constexpr LineIndex first_line() const {
    return LineIndex{value * kLinesPerPage};
  }
  constexpr auto operator<=>(const PageIndex&) const = default;

  static constexpr PageIndex containing(PoolOffset off) {
    return PageIndex{off / kPageSize};
  }
};

/// The payload of one cache line. Trivially copyable by design: line images
/// move between the host cache model, the device buffer, the undo log, and
/// PM media as opaque 64-byte values.
struct LineData {
  alignas(8) std::array<std::byte, kCacheLineSize> bytes{};

  friend bool operator==(const LineData& a, const LineData& b) {
    return std::memcmp(a.bytes.data(), b.bytes.data(), kCacheLineSize) == 0;
  }

  std::span<const std::byte> as_span() const { return bytes; }
  std::span<std::byte> as_span() { return bytes; }

  static LineData from_bytes(std::span<const std::byte> src) {
    LineData d;
    std::memcpy(d.bytes.data(), src.data(),
                src.size() < kCacheLineSize ? src.size() : kCacheLineSize);
    return d;
  }
};
static_assert(sizeof(LineData) == kCacheLineSize);

}  // namespace pax

template <>
struct std::hash<pax::LineIndex> {
  std::size_t operator()(const pax::LineIndex& l) const noexcept {
    // splitmix64 finalizer: line indices are often sequential, so mix well.
    std::uint64_t x = l.value + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

template <>
struct std::hash<pax::PageIndex> {
  std::size_t operator()(const pax::PageIndex& p) const noexcept {
    return std::hash<pax::LineIndex>{}(pax::LineIndex{p.value});
  }
};
