#include "pax/common/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace pax {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("PAX_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_store().load()); }

void set_log_level(LogLevel level) {
  level_store().store(static_cast<int>(level));
}

namespace internal {

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= level_store().load();
}

std::string format_log(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[1024];
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::fprintf(stderr, "[pax %-5s %s:%d] %s\n", level_name(level), base, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace pax
