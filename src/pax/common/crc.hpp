// CRC32C (Castagnoli) for framing persistent records.
//
// Every undo-log record and the pool header carry a CRC so that recovery can
// distinguish a torn (partially persisted) record from a complete one. CRC32C
// is the storage-industry standard polynomial (iSCSI, ext4, LevelDB). The
// implementation is a slice-by-8 table-driven software CRC: portable and
// ~1 B/cycle, plenty for a simulated device.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace pax {

/// Computes CRC32C over `data`, seeded with `seed` (pass the previous CRC to
/// chain multi-part computations; 0 for a fresh computation).
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

/// Convenience overload for raw buffers.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

/// CRC mixed ("masked") so that a CRC stored adjacent to the data it covers
/// does not accidentally validate (LevelDB-style masking).
constexpr std::uint32_t mask_crc(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
constexpr std::uint32_t unmask_crc(std::uint32_t masked) {
  std::uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace pax
