// Deterministic pseudo-random number generation for workloads and tests.
//
// SplitMix64 seeds Xoshiro256**; both are the standard small fast generators
// for simulation work. Workload generators and property tests take explicit
// seeds so every run is reproducible from its printed seed.
#pragma once

#include <array>
#include <cstdint>

namespace pax {

/// SplitMix64: tiny generator, mainly used to expand a 64-bit seed.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator.
class Xoshiro256 {
 public:
  explicit constexpr Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here;
    // bias is negligible for simulation bounds << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pax
