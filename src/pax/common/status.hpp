// Lightweight Status / Result<T> error handling.
//
// Recoverable conditions (I/O failures, corrupt log records, pool-format
// mismatches) are reported by value; invariant violations use PAX_CHECK
// (see check.hpp). This mirrors common storage-engine practice and keeps
// error paths explicit at call sites (Core Guidelines I.10, E.x).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace pax {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kIoError,          // underlying syscall / file failure
  kCorruption,       // CRC mismatch, bad magic, torn record
  kInvalidArgument,  // caller error detectable at runtime
  kNotFound,         // missing pool / key / entry
  kOutOfSpace,       // pool or log extent exhausted
  kFailedPrecondition,
};

/// Human-readable name for a StatusCode.
std::string_view status_code_name(StatusCode code);

/// A success-or-error value. Cheap to copy on success (empty message).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code-name>: <message>".
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status io_error(std::string msg) {
  return Status(StatusCode::kIoError, std::move(msg));
}
inline Status corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status out_of_space(std::string msg) {
  return Status(StatusCode::kOutOfSpace, std::move(msg));
}
inline Status failed_precondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}

/// Either a T or an error Status. Accessing value() on an error aborts, so
/// callers must test ok() (or use value_or) first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}            // NOLINT(implicit)
  Result(Status status) : v_(std::move(status)) {}     // NOLINT(implicit)
  Result(StatusCode code, std::string message)
      : v_(Status(code, std::move(message))) {}

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

  Status status() const {
    return ok() ? Status::ok() : std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

/// Propagate an error Status from an expression that yields Status.
#define PAX_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::pax::Status pax_status_ = (expr);           \
    if (!pax_status_.is_ok()) return pax_status_; \
  } while (0)

}  // namespace pax
