#include "pax/common/crc.hpp"

#include <array>

namespace pax {
namespace {

// Slice-by-8 CRC32C tables, generated at static-init time from the
// Castagnoli polynomial (reflected form 0x82f63b78).
struct Crc32cTables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Crc32cTables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int b = 0; b < 8; ++b) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t k = 1; k < 8; ++k) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[k][i] = crc;
      }
    }
  }
};

const Crc32cTables& tables() {
  static const Crc32cTables kTables;
  return kTables;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = tables().t;
  std::uint32_t crc = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();

  // Process 8 bytes at a time (slice-by-8).
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    __builtin_memcpy(&lo, p, 4);
    __builtin_memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][lo >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
          t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ static_cast<std::uint8_t>(*p++)) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  return crc32c(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size),
      seed);
}

}  // namespace pax
