// Invariant checking. PAX_CHECK fires on programming errors that must never
// occur regardless of input (broken state machines, impossible enum values);
// recoverable conditions use Status instead. Checks stay enabled in release
// builds: in a storage system a silently-violated invariant corrupts data.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pax::internal {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "PAX_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace pax::internal

#define PAX_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) [[unlikely]]                                          \
      ::pax::internal::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define PAX_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) [[unlikely]]                                          \
      ::pax::internal::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define PAX_UNREACHABLE(msg) \
  ::pax::internal::check_failed("unreachable", __FILE__, __LINE__, (msg))
