#include "pax/common/status.hpp"

namespace pax {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfSpace:
      return "OUT_OF_SPACE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string s(status_code_name(code_));
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace pax
