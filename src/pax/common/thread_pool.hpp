// A small persistent worker pool for data-parallel fan-out.
//
// Both halves of the host/device pipeline need the same shape of
// parallelism: the PaxDevice commit protocol fans per-stripe write-back
// across workers, and the libpax runtime fans per-page diffing across
// workers. Spawning std::threads per operation is measurable overhead at
// persist() frequency, so the pool keeps its workers parked on a condition
// variable between jobs.
//
// parallel_for(n, fn) runs fn(i) for every i in [0, n): the calling thread
// participates, indices are handed out through an atomic cursor (dynamic
// load balancing — stripes/pages have skewed work), and the call returns
// only when every index has completed. Worker threads synchronize with the
// caller through the job's mutex/condition variable, so writes made by fn
// happen-before parallel_for's return.
//
// A pool constructed with 0 workers degrades to an inline loop (no threads,
// no locking) — the `workers = parallelism - 1` convention callers use to
// express "run at parallelism 1" costs nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pax::common {

class ThreadPool {
 public:
  /// Spawns `workers` parked threads. Total parallelism of parallel_for is
  /// workers + 1 (the caller participates).
  explicit ThreadPool(unsigned workers) {
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Runs fn(i) for each i in [0, n), caller participating, returning when
  /// all n indices completed. fn must not recursively call parallel_for on
  /// the same pool. Safe to call from multiple threads (each call is its
  /// own job; workers drain the most recently published one first).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (threads_.empty() || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }

    auto job = std::make_shared<Job>();
    job->fn = fn;
    job->n = n;
    job->pending.store(n, std::memory_order_relaxed);
    {
      std::lock_guard lock(mu_);
      current_ = job;
      ++generation_;
    }
    wake_cv_.notify_all();

    run(*job);  // caller takes part

    std::unique_lock lock(mu_);
    job->done_cv.wait(lock, [&] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t n = 0;
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> pending{0};  // indices not yet completed
    std::condition_variable done_cv;
  };

  // Claims and executes indices until the job is drained. The thread that
  // completes the last index notifies the owner under the pool mutex (the
  // owner re-checks pending under the same mutex, so the wakeup cannot be
  // lost).
  void run(Job& job) {
    for (std::size_t i = job.cursor.fetch_add(1); i < job.n;
         i = job.cursor.fetch_add(1)) {
      job.fn(i);
      if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(mu_);
        job.done_cv.notify_all();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock(mu_);
    for (;;) {
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      std::shared_ptr<Job> job = current_;  // keep alive past the owner
      lock.unlock();
      if (job) run(*job);
      lock.lock();
    }
  }

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Job> current_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace pax::common
