#include "pax/libpax/vpm_region.hpp"

#include <signal.h>
#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::libpax {
namespace {

// Fixed mapping hint so persistent raw pointers survive restarts. Regions
// are placed sequentially from here (multiple pools in one process).
//
// TSan's x86-64 address layout reserves 0x0100'0000'0000-0x2000'0000'0000
// for shadow memory and its interposed mmap rejects mappings outside the
// app ranges, so TSan builds place regions in TSan's low app range
// (0x1000-0x0080'0000'0000) instead. Pointer stability across restarts
// holds within each build flavor, which is all the tests need.
#if defined(__SANITIZE_THREAD__)
#define PAX_VPM_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PAX_VPM_UNDER_TSAN 1
#endif
#endif
#ifdef PAX_VPM_UNDER_TSAN
constexpr std::uintptr_t kVpmBaseHint = 0x0040'0000'0000ULL;
#else
constexpr std::uintptr_t kVpmBaseHint = 0x2000'0000'0000ULL;
#endif

// Registry of live regions consulted by the global SIGSEGV handler.
// Fixed-size atomic slots: the handler can read it lock-free at any moment
// without racing a container reallocation.
constexpr std::size_t kMaxRegions = 64;
std::mutex g_registry_mu;  // serializes registration/unregistration only
std::atomic<VpmRegion*> g_regions[kMaxRegions]{};
std::atomic<std::uintptr_t> g_next_hint{kVpmBaseHint};
struct sigaction g_prev_sigsegv;
bool g_handler_installed = false;

void forward_to_previous(int sig, siginfo_t* info, void* ctx) {
  if (g_prev_sigsegv.sa_flags & SA_SIGINFO) {
    if (g_prev_sigsegv.sa_sigaction != nullptr) {
      g_prev_sigsegv.sa_sigaction(sig, info, ctx);
      return;
    }
  } else if (g_prev_sigsegv.sa_handler != SIG_DFL &&
             g_prev_sigsegv.sa_handler != SIG_IGN &&
             g_prev_sigsegv.sa_handler != nullptr) {
    g_prev_sigsegv.sa_handler(sig);
    return;
  }
  // Restore default disposition and re-raise: genuine crash.
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
}

void sigsegv_handler(int sig, siginfo_t* info, void* ctx) {
  // NOTE: only async-signal-safe operations here. The registry is read
  // without the mutex — regions are registered before any page of theirs is
  // protected and unregistered after all are unprotected, and the vector is
  // only mutated while no fault can target its regions.
  void* addr = info->si_addr;
  for (auto& slot : g_regions) {
    VpmRegion* region = slot.load(std::memory_order_acquire);
    if (region != nullptr && region->handle_fault(addr)) return;
  }
  forward_to_previous(sig, info, ctx);
}

void install_handler_once() {
  std::lock_guard lock(g_registry_mu);
  if (g_handler_installed) return;
  struct sigaction sa {};
  sa.sa_sigaction = sigsegv_handler;
  sa.sa_flags = SA_SIGINFO | SA_NODEFER;
  sigemptyset(&sa.sa_mask);
  PAX_CHECK(sigaction(SIGSEGV, &sa, &g_prev_sigsegv) == 0);
  g_handler_installed = true;
}

}  // namespace

Result<std::unique_ptr<VpmRegion>> VpmRegion::create(
    std::size_t size, std::uintptr_t fixed_hint, bool track_lines) {
  if (size == 0 || size % kPageSize != 0) {
    return invalid_argument("vPM region size must be page-aligned");
  }
  install_handler_once();

  const std::uintptr_t hint =
      fixed_hint != 0
          ? fixed_hint
          : g_next_hint.fetch_add((size + (std::uintptr_t{1} << 30)) &
                                  ~((std::uintptr_t{1} << 30) - 1));
  void* base = ::mmap(reinterpret_cast<void*>(hint), size,
                      PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1, 0);
  if (base == MAP_FAILED) {
    // Hint occupied (unusual): fall back to any address. Persistent raw
    // pointers then only survive within this process lifetime.
    PAX_LOG_WARN("vPM fixed hint unavailable, falling back: %s",
                 std::strerror(errno));
    base = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                  MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      return io_error(std::string("mmap vPM region: ") + std::strerror(errno));
    }
  }

  auto region = std::unique_ptr<VpmRegion>(
      new VpmRegion(static_cast<std::byte*>(base), size, track_lines));
  {
    std::lock_guard lock(g_registry_mu);
    bool placed = false;
    for (auto& slot : g_regions) {
      VpmRegion* expected = nullptr;
      if (slot.compare_exchange_strong(expected, region.get())) {
        placed = true;
        break;
      }
    }
    if (!placed) {
      return failed_precondition("too many live vPM regions");
    }
  }
  return region;
}

VpmRegion::VpmRegion(std::byte* b, std::size_t size, bool track_lines)
    : base_(b),
      size_(size),
      track_lines_(track_lines),
      dirty_(new std::atomic<std::uint8_t>[size / kPageSize]) {
  for (std::size_t i = 0; i < page_count(); ++i) {
    dirty_[i].store(0, std::memory_order_relaxed);
  }
  if (track_lines_) {
    line_bits_.reset(new std::atomic<std::uint64_t>[page_count()]);
    digests_valid_.reset(new std::atomic<std::uint8_t>[page_count()]);
    digests_.reset(new std::uint32_t[page_count() * kLinesPerPage]);
    for (std::size_t i = 0; i < page_count(); ++i) {
      line_bits_[i].store(0, std::memory_order_relaxed);
      digests_valid_[i].store(0, std::memory_order_relaxed);
    }
  }
}

VpmRegion::~VpmRegion() {
  // Unprotect first so no fault can race the unregistration.
  ::mprotect(base_, size_, PROT_READ | PROT_WRITE);
  {
    std::lock_guard lock(g_registry_mu);
    for (auto& slot : g_regions) {
      VpmRegion* expected = this;
      slot.compare_exchange_strong(expected, nullptr);
    }
  }
  ::munmap(base_, size_);
}

Status VpmRegion::protect_all() {
  protect_syscalls_.fetch_add(1, std::memory_order_relaxed);
  if (::mprotect(base_, size_, PROT_READ) != 0) {
    return io_error(std::string("mprotect: ") + std::strerror(errno));
  }
  for (std::size_t i = 0; i < page_count(); ++i) {
    if (dirty_[i].exchange(0, std::memory_order_acq_rel) != 0) {
      dirty_count_.fetch_sub(1, std::memory_order_acq_rel);
    }
    // A protected page cannot change without faulting again, so its digests
    // (if valid) stay truthful and its candidate set restarts empty.
    if (track_lines_) line_bits_[i].store(0, std::memory_order_release);
  }
  return Status::ok();
}

Status VpmRegion::protect_pages(std::span<const PageIndex> pages) {
  // Merge runs of adjacent pages into one mprotect each: persist() hands us
  // the sorted dirty set, which is typically dense (sequential workloads
  // dirty whole extents), so this turns O(pages) syscalls into O(runs).
  std::size_t i = 0;
  while (i < pages.size()) {
    PAX_CHECK(pages[i].value < page_count());
    std::size_t j = i + 1;
    while (j < pages.size() && pages[j].value == pages[j - 1].value + 1) {
      PAX_CHECK(pages[j].value < page_count());
      ++j;
    }
    protect_syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (::mprotect(base_ + pages[i].byte_offset(), (j - i) * kPageSize,
                   PROT_READ) != 0) {
      return io_error(std::string("mprotect pages: ") + std::strerror(errno));
    }
    for (std::size_t k = i; k < j; ++k) {
      if (dirty_[pages[k].value].exchange(0, std::memory_order_acq_rel) != 0) {
        dirty_count_.fetch_sub(1, std::memory_order_acq_rel);
      }
      if (track_lines_) {
        line_bits_[pages[k].value].store(0, std::memory_order_release);
      }
    }
    i = j;
  }
  return Status::ok();
}

std::vector<PageIndex> VpmRegion::dirty_pages() const {
  const std::size_t approx = dirty_count_.load(std::memory_order_acquire);
  std::vector<PageIndex> out;
  if (approx == 0) return out;  // clean region: skip the full scan
  out.reserve(approx);
  for (std::size_t i = 0; i < page_count(); ++i) {
    if (dirty_[i].load(std::memory_order_acquire) != 0) {
      out.push_back(PageIndex{i});
    }
  }
  return out;
}

bool VpmRegion::is_dirty(PageIndex page) const {
  PAX_CHECK(page.value < page_count());
  return dirty_[page.value].load(std::memory_order_acquire) != 0;
}

bool VpmRegion::handle_fault(void* addr) {
  auto* p = static_cast<std::byte*>(addr);
  if (p < base_ || p >= base_ + size_) return false;

  const std::size_t page = static_cast<std::size_t>(p - base_) / kPageSize;
  faults_.fetch_add(1, std::memory_order_relaxed);
  if (track_lines_) {
    // The faulting store is the one line-level event the kernel shows us:
    // record it so the diff memcmps this line even on a digest collision.
    // Lock-free atomic or-in only — this runs inside the signal handler.
    const std::size_t line =
        (static_cast<std::size_t>(p - base_) / kCacheLineSize) % kLinesPerPage;
    line_bits_[page].fetch_or(std::uint64_t{1} << line,
                              std::memory_order_release);
  }
  // exchange (not store) so the 0→1 transition is counted exactly once even
  // when two threads fault the same page. Lock-free atomics only: this runs
  // inside the signal handler.
  if (dirty_[page].exchange(1, std::memory_order_acq_rel) == 0) {
    dirty_count_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Unprotect the page; the faulting store retries and succeeds. If two
  // threads fault the same page, both mark it dirty and both mprotect —
  // idempotent.
  if (::mprotect(base_ + page * kPageSize, kPageSize,
                 PROT_READ | PROT_WRITE) != 0) {
    return false;  // fall through to the previous handler → crash loudly
  }
  return true;
}

}  // namespace pax::libpax
