// STL-compatible allocator over a PaxHeap, the piece that lets *unmodified*
// standard containers live in persistent memory (the paper's "Black-Box Code
// Reuse" property, §1; Listing 1 passes exactly such an allocator to an
// off-the-shelf hash map).
//
//   using Map = std::unordered_map<K, V, std::hash<K>, std::equal_to<K>,
//                                  pax::libpax::PaxStlAllocator<std::pair<const K, V>>>;
//
// Containers embed a copy of their allocator, and that copy lives inside the
// persistent region — so the allocator must stay valid across process
// restarts. It therefore stores the vPM region's *base address* (stable
// across restarts thanks to the fixed mapping hint), not a pointer to the
// volatile PaxHeap object; the live heap is found through a process-global
// registry that PaxRuntime maintains (see heap registry in heap.hpp).
//
// Allocation failures surface as std::bad_alloc per the standard contract.
#pragma once

#include <cstddef>
#include <new>

#include "pax/common/check.hpp"
#include "pax/libpax/heap.hpp"

namespace pax::libpax {

template <typename T>
class PaxStlAllocator {
 public:
  using value_type = T;

  explicit PaxStlAllocator(PaxHeap* heap) {
    PAX_CHECK(heap != nullptr);
    base_ = heap->base();
  }

  template <typename U>
  PaxStlAllocator(const PaxStlAllocator<U>& other) : base_(other.base_) {}

  T* allocate(std::size_t n) {
    if (n > max_size()) throw std::bad_alloc();
    void* p =
        heap()->allocate(n * sizeof(T), alignof(T) > 16 ? alignof(T) : 16);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t /*n*/) noexcept { heap()->deallocate(p); }

  PaxHeap* heap() const {
    PaxHeap* h = find_registered_heap(base_);
    PAX_CHECK_MSG(h != nullptr,
                  "allocator used without a live PaxRuntime for its region");
    return h;
  }

  friend bool operator==(const PaxStlAllocator& a, const PaxStlAllocator& b) {
    return a.base_ == b.base_;
  }

 private:
  static constexpr std::size_t max_size() {
    return static_cast<std::size_t>(-1) / sizeof(T);
  }

  template <typename U>
  friend class PaxStlAllocator;

  std::byte* base_;  // region base: stable across restarts (fixed mapping)
};

}  // namespace pax::libpax
