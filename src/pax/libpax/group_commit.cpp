#include "pax/libpax/group_commit.hpp"

#include <algorithm>
#include <utility>

#include "pax/common/check.hpp"
#include "pax/libpax/runtime.hpp"

namespace pax::libpax {

EpochGroupCommit::EpochGroupCommit(std::vector<Participant> participants)
    : participants_(std::move(participants)),
      dirty_ops_(participants_.size(), 0),
      shard_mu_(participants_.size()) {
  PAX_CHECK_MSG(!participants_.empty(),
                "group commit needs at least one participant");
  for (auto& p : participants_) {
    PAX_CHECK_MSG(p.runtime != nullptr, "participant without a runtime");
    if (!p.seal) {
      p.seal = [rt = p.runtime] { return rt->persist_async(); };
    }
  }
}

void EpochGroupCommit::mark_dirty(std::size_t index, std::uint64_t ops) {
  PAX_CHECK_MSG(index < participants_.size(),
                "participant index out of range");
  std::lock_guard lock(mu_);
  dirty_ops_[index] += ops;
  pending_ops_ += ops;
}

std::uint64_t EpochGroupCommit::pending_ops() const {
  std::lock_guard lock(mu_);
  return pending_ops_;
}

Result<EpochGroupCommit::WaveResult> EpochGroupCommit::commit_wave() {
  std::lock_guard wave(wave_mu_);

  // Atomic cut: everything dirty now rides this wave; marks arriving while
  // the wave runs accumulate for the next one.
  std::vector<std::uint64_t> taken(participants_.size(), 0);
  std::uint64_t wave_ops = 0;
  {
    std::lock_guard lock(mu_);
    taken.swap(dirty_ops_);
    dirty_ops_.assign(participants_.size(), 0);
    for (std::uint64_t n : taken) wave_ops += n;
    pending_ops_ -= wave_ops;
  }

  WaveResult result;
  result.epochs.assign(participants_.size(), 0);
  result.ops = wave_ops;
  if (wave_ops == 0) {
    std::lock_guard lock(mu_);
    ++stats_.empty_waves;
    return result;
  }

  // Phase 1 — seal every dirty shard. persist_async is the cheap half:
  // snapshot swap + protection re-arm; the durable work drains on each
  // runtime's pipeline worker concurrently with the others.
  Status first_error = Status::ok();
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (taken[i] == 0) continue;
    auto sealed = participants_[i].seal();
    if (!sealed.ok()) {
      if (first_error.is_ok()) first_error = sealed.status();
      continue;
    }
    result.epochs[i] = sealed.value();
    ++result.shards;
  }

  // Phase 2 — one wait per sealed shard; total wall time is the max drain,
  // not the sum.
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (result.epochs[i] == 0) continue;
    auto committed =
        participants_[i].runtime->wait_persisted(result.epochs[i]);
    if (!committed.ok() && first_error.is_ok()) {
      first_error = committed.status();
    }
  }

  if (!first_error.is_ok()) {
    // The wave did not cover its ops; put them back so callers can retry
    // (or surface the sticky runtime error again).
    std::lock_guard lock(mu_);
    for (std::size_t i = 0; i < participants_.size(); ++i) {
      dirty_ops_[i] += taken[i];
    }
    pending_ops_ += wave_ops;
    return first_error;
  }

  {
    std::lock_guard lock(mu_);
    ++stats_.waves;
    result.wave = stats_.waves;
    stats_.wave_shard_seals += result.shards;
    stats_.wave_ops += wave_ops;
    stats_.max_wave_shards = std::max(stats_.max_wave_shards, result.shards);
    stats_.max_wave_ops = std::max(stats_.max_wave_ops, wave_ops);
  }
  return result;
}

Result<Epoch> EpochGroupCommit::commit_one(std::size_t index) {
  PAX_CHECK_MSG(index < participants_.size(),
                "participant index out of range");
  std::lock_guard shard_lock(shard_mu_[index]);

  std::uint64_t taken = 0;
  {
    std::lock_guard lock(mu_);
    taken = dirty_ops_[index];
    dirty_ops_[index] = 0;
    pending_ops_ -= taken;
  }

  auto sealed = participants_[index].seal();
  if (sealed.ok()) {
    auto committed =
        participants_[index].runtime->wait_persisted(sealed.value());
    if (!committed.ok()) sealed = committed.status();
  }

  std::lock_guard lock(mu_);
  if (!sealed.ok()) {
    dirty_ops_[index] += taken;
    pending_ops_ += taken;
    return sealed.status();
  }
  ++stats_.independent_commits;
  stats_.independent_ops += taken;
  return sealed;
}

GroupCommitStats EpochGroupCommit::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace pax::libpax
