// Persistent<T>: typed handle to a pool's root object (Listing 1's
// Persistent<HashMap>::new(&allocator)).
//
// open() either recovers the existing root (any crash has already been
// rolled back by PaxRuntime construction) or creates a fresh instance —
// "the application always recovers at the most recent persistent snapshot
// or with a new, empty instance of the structure" (§3.4). A type tag stored
// next to the root catches reopening a pool as the wrong type.
//
// Nothing becomes durable until PaxRuntime::persist(): creating the root
// and then crashing yields a pool that simply creates a fresh root again.
#pragma once

#include <typeinfo>
#include <utility>

#include "pax/common/status.hpp"
#include "pax/libpax/runtime.hpp"

namespace pax::libpax {

namespace internal {

/// Stable-ish type fingerprint: FNV-1a over the mangled name. Good enough
/// to catch honest mistakes (not a security boundary; documented).
inline std::uint64_t type_fingerprint(const std::type_info& info) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* p = info.name(); *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace internal

template <typename T>
class Persistent {
 public:
  /// Opens the pool's root object, constructing it with `factory(mem)`
  /// (placement-new into `mem`) if the pool has none yet.
  template <typename Factory>
  static Result<Persistent> open(PaxRuntime& runtime, Factory&& factory) {
    PaxHeap& heap = runtime.heap();
    const std::uint64_t expect = internal::type_fingerprint(typeid(T));

    if (std::uint64_t root = heap.root_offset(); root != 0) {
      auto* slot = static_cast<Slot*>(heap.offset_to_ptr(root));
      if (slot->type_hash != expect) {
        return Status(StatusCode::kFailedPrecondition,
                      "pool root holds a different type");
      }
      return Persistent(&runtime, &slot->value, /*recovered=*/true);
    }

    auto* slot = static_cast<Slot*>(
        heap.allocate(sizeof(Slot), alignof(Slot) > 16 ? alignof(Slot) : 16));
    if (slot == nullptr) {
      return Status(StatusCode::kOutOfSpace, "pool data extent exhausted");
    }
    slot->type_hash = expect;
    slot->reserved = 0;
    std::forward<Factory>(factory)(static_cast<void*>(&slot->value));
    heap.set_root_offset(heap.ptr_to_offset(slot));
    return Persistent(&runtime, &slot->value, /*recovered=*/false);
  }

  /// Convenience for standard containers: constructs the root with the
  /// pool's allocator, e.g. std::unordered_map(alloc).
  static Result<Persistent> open(PaxRuntime& runtime) {
    return open(runtime, [&runtime](void* mem) {
      using Alloc = typename T::allocator_type;
      new (mem) T(Alloc(&runtime.heap()));
    });
  }

  T* get() const { return value_; }
  T* operator->() const { return value_; }
  T& operator*() const { return *value_; }

  /// True if the object was recovered from an earlier session rather than
  /// freshly constructed.
  bool recovered() const { return recovered_; }

  /// Shorthand for runtime.persist().
  Result<Epoch> persist() { return runtime_->persist(); }

 private:
  struct Slot {
    std::uint64_t type_hash;
    std::uint64_t reserved;
    T value;
  };

  Persistent(PaxRuntime* runtime, T* value, bool recovered)
      : runtime_(runtime), value_(value), recovered_(recovered) {}

  PaxRuntime* runtime_;
  T* value_;
  bool recovered_;
};

}  // namespace pax::libpax
