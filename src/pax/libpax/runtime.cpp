#include "pax/libpax/runtime.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <unordered_map>

#include "pax/common/check.hpp"
#include "pax/common/crc.hpp"
#include "pax/common/log.hpp"

namespace pax::libpax {

RuntimeOptions RuntimeOptions::deterministic(RuntimeOptions base) {
  base.start_flusher_thread = false;
  base.diff_workers = 1;
  base.device.persist_workers = 1;
  if (base.adaptive_sync) base.adaptive_pin_workers = 1;
  return base;
}

namespace {

// Per-device remembered vPM base, so reopening a pool maps the region at the
// same address and recovered raw pointers stay valid (within one process;
// across processes the global fixed hint does the same job).
std::mutex g_base_mu;
std::unordered_map<const pmem::PmemDevice*, std::uintptr_t>& base_registry() {
  static std::unordered_map<const pmem::PmemDevice*, std::uintptr_t> reg;
  return reg;
}

// Reads one cache line as relaxed atomic 64-bit word loads. The
// mutator-vs-flusher diff race is benign by contract (§3.5): a page stays
// writable and dirty until persist() re-protects it, so whatever torn value
// this captures is re-examined by a later, quiesced diff before it can be
// committed. The loads are genuinely atomic rather than raw loads under a
// TSan exemption, which makes the race defined behavior on both sides —
// concurrent mutators that may overlap a live diff must pair with atomic
// word stores (tests use relaxed word fills) — and lets the TSan job run
// with zero suppressions. Relaxed word loads compile to plain movs on
// x86-64, so this costs nothing over the old exempted version.
LineData capture_line(const std::byte* src) {
  constexpr std::size_t kWords = kCacheLineSize / sizeof(std::uint64_t);
  std::uint64_t words[kWords];
  const auto* in = reinterpret_cast<const std::uint64_t*>(src);
  for (std::size_t i = 0; i < kWords; ++i) {
    words[i] = __atomic_load_n(&in[i], __ATOMIC_RELAXED);
  }
  LineData out;
  std::memcpy(out.bytes.data(), words, kCacheLineSize);  // locals: race-free
  return out;
}

std::uint32_t line_crc(const LineData& d) {
  return crc32c(d.bytes.data(), d.bytes.size());
}

}  // namespace

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::map_pool(
    const std::string& path, std::size_t pool_size,
    const RuntimeOptions& options) {
  auto pm = pmem::PmemDevice::open_file(path, pool_size, /*create=*/true);
  if (!pm.ok()) return pm.status();
  auto owned = std::move(pm).value();
  pmem::PmemDevice* raw = owned.get();
  return build(std::move(owned), raw, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::create_in_memory(
    std::size_t pool_size, const RuntimeOptions& options) {
  auto owned = pmem::PmemDevice::create_in_memory(pool_size);
  pmem::PmemDevice* raw = owned.get();
  return build(std::move(owned), raw, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::attach(
    pmem::PmemDevice* pm, const RuntimeOptions& options) {
  return build(nullptr, pm, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::build(
    std::unique_ptr<pmem::PmemDevice> owned_pm, pmem::PmemDevice* pm,
    const RuntimeOptions& options) {
  if (options.log_size % kPageSize != 0) {
    return invalid_argument("log_size must be page-aligned");
  }
  if (pm->size() % kPageSize != 0) {
    return invalid_argument("pool size must be page-aligned");
  }
  if (options.device.stripes == 0) {
    return invalid_argument("device.stripes must be >= 1");
  }
  if (options.device.persist_workers == 0) {
    return invalid_argument("device.persist_workers must be >= 1");
  }
  if (options.sync_batch_lines == 0) {
    return invalid_argument("sync_batch_lines must be >= 1");
  }
  if (options.diff_workers == 0) {
    return invalid_argument("diff_workers must be >= 1");
  }

  auto rt = std::unique_ptr<PaxRuntime>(new PaxRuntime());
  rt->owned_pm_ = std::move(owned_pm);
  rt->pm_ = pm;

  // Open the pool; a never-formatted device (magic == 0) is formatted.
  if (pm->load_u64(0) == 0) {
    auto created = pmem::PmemPool::create(pm, options.log_size);
    if (!created.ok()) return created.status();
    rt->pool_ = created.value();
  } else {
    auto opened = pmem::PmemPool::open(pm);
    if (!opened.ok()) return opened.status();
    rt->pool_ = opened.value();
  }

  // Roll back any interrupted epoch before anything touches the data (§3.4).
  auto report = device::recover_pool(*rt->pool_);
  if (!report.ok()) return report.status();
  rt->recovery_report_ = report.value();

  device::DeviceConfig dev_cfg = options.device;
  if (options.log_ring_slots > 0) {
    dev_cfg.log_ring_slots = options.log_ring_slots;
  }
  rt->device_ = std::make_unique<device::PaxDevice>(&*rt->pool_, dev_cfg);

  // Map the vPM region: an explicit hint wins (replication failover),
  // otherwise reuse the base any earlier mapping of this device had.
  std::uintptr_t hint = options.vpm_base_hint;
  if (hint == 0) {
    std::lock_guard lock(g_base_mu);
    auto it = base_registry().find(pm);
    if (it != base_registry().end()) hint = it->second;
  }
  const std::size_t region_size = rt->pool_->data_size() & ~(kPageSize - 1);
  auto region = VpmRegion::create(region_size, hint, options.track_lines);
  if (!region.ok()) return region.status();
  rt->region_ = std::move(region).value();
  {
    std::lock_guard lock(g_base_mu);
    base_registry()[pm] =
        reinterpret_cast<std::uintptr_t>(rt->region_->base());
  }

  // Seed the region from the recovered PM image.
  pm->load(rt->pool_->data_offset(),
           {rt->region_->base(), rt->region_->size()});

  // Arm write tracking *before* the heap constructor so a fresh heap's
  // format writes are captured like any application store.
  PAX_RETURN_IF_ERROR(rt->region_->protect_all());

  rt->heap_ =
      std::make_unique<PaxHeap>(rt->region_->base(), rt->region_->size());
  register_heap(rt->region_->base(), rt->heap_.get());

  rt->sync_batch_lines_ = options.sync_batch_lines;
  rt->diff_workers_ = options.diff_workers;
  rt->diff_fanout_min_pages_ = options.diff_fanout_min_pages;
  rt->track_lines_ = options.track_lines;
  unsigned max_parallelism = rt->diff_workers_;
  if (options.adaptive_sync) {
    SyncTunerConfig tc;
    tc.pinned_batch_lines = options.adaptive_pin_batch_lines;
    tc.pinned_workers = options.adaptive_pin_workers;
    tc.ewma_alpha = options.adaptive_ewma_alpha;
    tc.hysteresis = options.adaptive_hysteresis;
    rt->tuner_.emplace(tc);
    // The pool must be able to serve whatever the tuner may ask for.
    max_parallelism = std::max(max_parallelism, tc.max_workers);
  }
  if (max_parallelism > 1) {
    rt->diff_pool_ = std::make_unique<common::ThreadPool>(max_parallelism - 1);
  }

  rt->pipeline_depth_ = options.pipeline_depth;
  if (rt->pipeline_depth_ > 0) {
    // The pipeline numbers epochs itself (drain_one checks the device
    // agrees); both cursors start at the recovered commit point.
    rt->pipe_committed_ = rt->pool_->committed_epoch();
    rt->pipe_next_epoch_ = rt->pipe_committed_ + 1;
    rt->drain_thread_ =
        std::thread([rt_ptr = rt.get()] { rt_ptr->drain_worker_loop(); });
  }

  if (options.start_flusher_thread) {
    rt->flusher_ = std::thread([rt_ptr = rt.get(),
                                interval = options.flusher_interval] {
      std::unique_lock lock(rt_ptr->flusher_mu_);
      while (!rt_ptr->stop_flusher_.load(std::memory_order_acquire)) {
        lock.unlock();
        rt_ptr->sync_step();
        lock.lock();
        // Interruptible interval: the destructor flips stop_flusher_ and
        // notifies, so teardown waits one sync_step at most, not a full
        // sleep_for(interval).
        rt_ptr->flusher_cv_.wait_for(lock, interval, [rt_ptr] {
          return rt_ptr->stop_flusher_.load(std::memory_order_acquire);
        });
      }
    });
  }

  PAX_LOG_INFO("pool mapped: epoch=%llu, vPM %zu bytes at %p%s",
               static_cast<unsigned long long>(rt->pool_->committed_epoch()),
               rt->region_->size(), static_cast<void*>(rt->region_->base()),
               rt->heap_->recovered() ? " (heap recovered)" : " (heap fresh)");
  return rt;
}

PaxRuntime::~PaxRuntime() {
  if (flusher_.joinable()) {
    {
      std::lock_guard lock(flusher_mu_);
      stop_flusher_.store(true, std::memory_order_release);
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  if (drain_thread_.joinable()) {
    {
      std::lock_guard lock(pipe_mu_);
      stop_drain_ = true;
    }
    pipe_work_cv_.notify_all();
    drain_thread_.join();
  }
  if (region_) unregister_heap(region_->base());
  // Deliberately no flush/persist: destruction without persist() behaves
  // like a crash, which is what the snapshot contract promises — queued
  // pipeline snapshots whose drain never ran are discarded the same way.
}

Status PaxRuntime::sync_pages(const std::vector<PageIndex>& pages) {
  std::size_t batch = sync_batch_lines_;
  unsigned workers = diff_workers_;
  if (tuner_.has_value()) {
    SyncObservation obs;
    obs.dirty_pages = pages.size();
    // Windowed rates since the last decision. Density falls back to 0 (the
    // tuner floors it at 1 line/page) until a window has synced something.
    const std::uint64_t dp = sync_stats_.pages_scanned - tuner_window_pages_;
    const std::uint64_t dl = sync_stats_.lines_synced - tuner_window_lines_;
    if (dp != 0) {
      obs.lines_per_page = static_cast<double>(dl) / static_cast<double>(dp);
    }
    std::uint64_t acq = 0, con = 0;
    device_->stripe_lock_totals(&acq, &con);
    const std::uint64_t da = acq - tuner_window_lock_acq_;
    const std::uint64_t dc = con - tuner_window_lock_con_;
    if (da != 0) {
      obs.stripe_contention =
          static_cast<double>(dc) / static_cast<double>(da);
    }
    tuner_window_pages_ = sync_stats_.pages_scanned;
    tuner_window_lines_ = sync_stats_.lines_synced;
    tuner_window_lock_acq_ = acq;
    tuner_window_lock_con_ = con;

    const SyncDecision d = tuner_->decide(obs);
    batch = d.batch_lines;
    workers = d.workers;
    ++sync_stats_.tuner_decisions;
  }
  sync_stats_.last_batch_lines = batch;
  sync_stats_.last_diff_workers = workers;
  if (batch <= 1) return sync_pages_legacy(pages);
  return sync_pages_batched(pages, batch, workers);
}

Status PaxRuntime::sync_pages_legacy(const std::vector<PageIndex>& pages) {
  for (PageIndex page : pages) {
    ++stats_.pages_diffed;
    ++sync_stats_.pages_scanned;
    const bool seed_digests =
        track_lines_ && !region_->line_digests_valid(page);
    const std::byte* page_bytes = region_->page_span(page).data();
    for (std::size_t l = 0; l < kLinesPerPage; ++l) {
      ++stats_.lines_diff_checked;
      ++sync_stats_.lines_diffed;
      const LineIndex pool_line = region_line_to_pool_line(page, l);
      const LineData cur = capture_line(page_bytes + l * kCacheLineSize);
      // Legacy never skips, but it still refreshes the digests so the
      // batched path can trust them if the knobs change mid-run: after this
      // iteration the device view equals `cur` whether or not we push.
      if (track_lines_) {
        region_->set_line_digest(page, l, line_crc(cur));
        if (auto* chk = pm_->checker()) {
          chk->on_digest_apply(pool_line.value);
        }
      }
      ++stats_.device_calls;
      const LineData device_copy = device_->peek_line(pool_line);
      if (cur == device_copy) continue;
      ++stats_.lines_dirty_found;
      ++sync_stats_.lines_synced;
      stats_.device_calls += 2;
      PAX_RETURN_IF_ERROR(device_->write_intent(pool_line));
      device_->writeback_line(pool_line, cur);
    }
    if (seed_digests) {
      region_->mark_line_digests_valid(page);
      ++sync_stats_.digest_rebuilds;
    }
  }
  return Status::ok();
}

Status PaxRuntime::sync_pages_batched(const std::vector<PageIndex>& pages,
                                      std::size_t batch_lines,
                                      unsigned workers) {
  if (pages.empty()) return Status::ok();

  // Static partition: shard s diffs pages [len*s/shards, len*(s+1)/shards).
  // Each shard owns its stats delta and LineUpdate buffer; the device's
  // stripe locking makes concurrent peek_lines/sync_lines safe, and the
  // per-page digests are safe because each page has exactly one shard.
  const std::size_t shards =
      (diff_pool_ == nullptr || workers <= 1 ||
       pages.size() < diff_fanout_min_pages_)
          ? 1
          : std::min<std::size_t>(workers, pages.size());

  struct PendingDigest {
    PageIndex page;
    std::size_t line;
    std::uint32_t crc;
  };
  struct Shard {
    RuntimeStats delta;
    SyncStats sdelta;
    Status status = Status::ok();
  };
  std::vector<Shard> results(shards);

  auto diff_shard = [&](std::size_t s) {
    Shard& out = results[s];
    std::vector<device::LineUpdate> batch;
    batch.reserve(batch_lines);
    std::vector<PendingDigest> pending_digests;
    std::vector<PageIndex> pending_valid;
    std::array<LineIndex, kLinesPerPage> lines;
    std::array<LineData, kLinesPerPage> shadow;
    std::array<LineData, kLinesPerPage> cur;
    std::array<std::uint32_t, kLinesPerPage> crc;

    // Digest writes trail the device: a pushed line's digest (and a rebuilt
    // page's valid flag) is applied only once the sync_lines call carrying
    // the line has succeeded, so a failed flush leaves the digests
    // describing what the device actually holds and a retry re-examines the
    // affected lines instead of skipping them.
    auto flush = [&]() -> Status {
      if (!batch.empty()) {
        ++out.delta.device_calls;
        ++out.delta.sync_batches;
        Status st = device_->sync_lines(batch);
        batch.clear();
        if (!st.is_ok()) {
          if (auto* chk = pm_->checker()) chk->on_sync_batch_fail();
          return st;
        }
        if (auto* chk = pm_->checker()) chk->on_sync_batch_ok();
      }
      for (const PendingDigest& pd : pending_digests) {
        region_->set_line_digest(pd.page, pd.line, pd.crc);
        if (auto* chk = pm_->checker()) {
          chk->on_digest_apply(
              region_line_to_pool_line(pd.page, pd.line).value);
        }
      }
      pending_digests.clear();
      for (PageIndex done : pending_valid) {
        region_->mark_line_digests_valid(done);
      }
      pending_valid.clear();
      return Status::ok();
    };

    auto push = [&](PageIndex page, std::size_t l) -> Status {
      ++out.delta.lines_dirty_found;
      ++out.sdelta.lines_synced;
      if (auto* chk = pm_->checker()) chk->on_sync_push(lines[l].value);
      batch.push_back({lines[l], cur[l]});
      if (track_lines_) pending_digests.push_back({page, l, crc[l]});
      if (batch.size() >= batch_lines) return flush();
      return Status::ok();
    };

    const std::size_t lo = pages.size() * s / shards;
    const std::size_t hi = pages.size() * (s + 1) / shards;
    for (std::size_t p = lo; p < hi; ++p) {
      const PageIndex page = pages[p];
      ++out.delta.pages_diffed;
      ++out.sdelta.pages_scanned;
      const std::byte* page_bytes = region_->page_span(page).data();
      for (std::size_t l = 0; l < kLinesPerPage; ++l) {
        lines[l] = region_line_to_pool_line(page, l);
        cur[l] = capture_line(page_bytes + l * kCacheLineSize);
        if (track_lines_) crc[l] = line_crc(cur[l]);
      }

      if (region_->line_digests_valid(page)) {
        // Tracked page: only the candidate lines — fault-observed stores
        // plus digest mismatches — touch the device shadow. A candidate bit
        // forces the memcmp even when its digest matches (the collision
        // fallback); the remaining lines are skipped outright.
        std::uint64_t want = region_->candidate_lines(page);
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
          if (crc[l] != region_->line_digest(page, l)) {
            want |= std::uint64_t{1} << l;
          }
        }
        std::array<LineIndex, kLinesPerPage> cand;
        std::array<std::size_t, kLinesPerPage> slot;
        std::size_t n = 0;
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
          if ((want >> l) & 1) {
            cand[n] = lines[l];
            slot[n] = l;
            ++n;
          }
        }
        out.sdelta.lines_skipped += kLinesPerPage - n;
        if (n == 0) continue;
        ++out.delta.device_calls;
        device_->peek_lines(std::span(cand.data(), n),
                            std::span(shadow.data(), n));
        for (std::size_t i = 0; i < n; ++i) {
          const std::size_t l = slot[i];
          ++out.delta.lines_diff_checked;
          ++out.sdelta.lines_diffed;
          if (cur[l] == shadow[i]) {
            // Candidate but unchanged (rewrite of the same value, or a
            // collision suspect that compared clean): the device already
            // holds cur, so the digest can advance immediately.
            region_->set_line_digest(page, l, crc[l]);
            if (auto* chk = pm_->checker()) {
              chk->on_digest_apply(lines[l].value);
            }
            continue;
          }
          Status st = push(page, l);
          if (!st.is_ok()) {
            out.status = st;
            return;
          }
        }
      } else {
        // Untracked (or first-diff) page: fetch the whole page shadow; with
        // tracking on, this full compare seeds every digest (the rebuild).
        ++out.delta.device_calls;
        device_->peek_lines(lines, shadow);
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
          ++out.delta.lines_diff_checked;
          ++out.sdelta.lines_diffed;
          if (cur[l] == shadow[l]) {
            if (track_lines_) {
              region_->set_line_digest(page, l, crc[l]);
              if (auto* chk = pm_->checker()) {
                chk->on_digest_apply(lines[l].value);
              }
            }
            continue;
          }
          Status st = push(page, l);
          if (!st.is_ok()) {
            out.status = st;
            return;
          }
        }
        if (track_lines_) {
          pending_valid.push_back(page);
          ++out.sdelta.digest_rebuilds;
        }
      }
    }
    out.status = flush();
  };

  if (shards == 1) {
    diff_shard(0);
  } else {
    diff_pool_->parallel_for(shards, diff_shard);
  }

  // Merge shard deltas (caller holds sync_mu_; workers have joined).
  Status first = Status::ok();
  for (const Shard& sh : results) {
    stats_.pages_diffed += sh.delta.pages_diffed;
    stats_.lines_diff_checked += sh.delta.lines_diff_checked;
    stats_.lines_dirty_found += sh.delta.lines_dirty_found;
    stats_.device_calls += sh.delta.device_calls;
    stats_.sync_batches += sh.delta.sync_batches;
    sync_stats_.pages_scanned += sh.sdelta.pages_scanned;
    sync_stats_.lines_diffed += sh.sdelta.lines_diffed;
    sync_stats_.lines_skipped += sh.sdelta.lines_skipped;
    sync_stats_.lines_synced += sh.sdelta.lines_synced;
    sync_stats_.digest_rebuilds += sh.sdelta.digest_rebuilds;
    if (first.is_ok() && !sh.status.is_ok()) first = sh.status;
  }
  return first;
}

void PaxRuntime::sync_step() {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  ++stats_.sync_steps;
  if (pipeline_depth_ > 0) {
    // While snapshots are outstanding the drain worker owns the device
    // epoch path: syncing the live (N+1) dirty pages here would push their
    // content into the device before epoch N seals. New snapshots can't be
    // enqueued while we hold sync_mu_, so this check can't go stale.
    std::lock_guard plock(pipe_mu_);
    if (!pipe_queue_.empty() || pipe_inflight_) return;
  }
  // Pages stay writable and dirty until persist() re-protects them, so any
  // store racing this diff is re-examined later; see runtime.hpp.
  Status s = sync_pages(region_->dirty_pages());
  if (!s.is_ok()) {
    PAX_LOG_WARN("background sync: %s", s.to_string().c_str());
    return;
  }
  device_->tick();
  // Complete a pending non-blocking persist off the application's path.
  if (device_->has_sealed_epoch()) {
    auto committed = device_->commit_sealed();
    if (!committed.ok()) {
      PAX_LOG_WARN("async commit: %s",
                   committed.status().to_string().c_str());
    }
  }
}

Result<Epoch> PaxRuntime::persist_async() {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  if (pipeline_depth_ > 0) return persist_async_pipelined();
  if (device_->has_sealed_epoch()) {
    // Epochs commit in order: finish the previous one first.
    auto committed = device_->commit_sealed();
    if (!committed.ok()) return committed.status();
  }

  const std::vector<PageIndex> dirty = region_->dirty_pages();
  PAX_RETURN_IF_ERROR(sync_pages(dirty));

  auto pull = [this](LineIndex line) -> std::optional<LineData> {
    const PoolOffset off = line.byte_offset() - pool_->data_offset();
    return LineData::from_bytes({region_->base() + off, kCacheLineSize});
  };
  auto sealed = device_->seal_epoch(pull);
  if (!sealed.ok()) return sealed.status();

  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));
  return sealed;
}

Result<Epoch> PaxRuntime::complete_persist() {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  if (pipeline_depth_ > 0) {
    Epoch target = 0;
    {
      std::lock_guard plock(pipe_mu_);
      if (pipe_queue_.empty() && !pipe_inflight_) {
        if (!pipe_error_.is_ok()) return pipe_error_;
        return pool_->committed_epoch();
      }
      // Epochs commit in order, so the queue head is always the successor
      // of the last pipeline commit.
      target = pipe_committed_ + 1;
    }
    return wait_for_pipeline_epoch(target);
  }
  return device_->commit_sealed();
}

Result<Epoch> PaxRuntime::wait_persisted(Epoch epoch) {
  if (pipeline_depth_ > 0) {
    // pipe_mu_ only: waiting must not exclude other shards' persist_async
    // issuers (or the drain worker) from making progress.
    return wait_for_pipeline_epoch(epoch);
  }
  if (committed_epoch() >= epoch) return epoch;
  auto committed = complete_persist();
  if (!committed.ok()) return committed.status();
  if (committed.value() < epoch) {
    return failed_precondition("wait_persisted: epoch was never sealed");
  }
  return epoch;
}

Result<Epoch> PaxRuntime::persist() {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  ++stats_.persists;
  if (pipeline_depth_ > 0) {
    auto sealed = persist_async_pipelined();
    if (!sealed.ok()) return sealed.status();
    return wait_for_pipeline_epoch(sealed.value());
  }

  const std::vector<PageIndex> dirty = region_->dirty_pages();
  PAX_RETURN_IF_ERROR(sync_pages(dirty));

  // The pull callback hands the device the region's (authoritative) current
  // line; re-protecting the pages below is the ownership-revocation half of
  // the RdShared analogy.
  auto pull = [this](LineIndex line) -> std::optional<LineData> {
    const PoolOffset off = line.byte_offset() - pool_->data_offset();
    return LineData::from_bytes({region_->base() + off, kCacheLineSize});
  };
  auto committed = device_->persist(pull);
  if (!committed.ok()) return committed.status();

  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));
  return committed;
}

Result<Epoch> PaxRuntime::persist_async_pipelined() {
  {
    std::unique_lock plock(pipe_mu_);
    if (!pipe_error_.is_ok()) return pipe_error_;
    if (pipe_queue_.size() + (pipe_inflight_ ? 1 : 0) >= pipeline_depth_) {
      ++pipe_stats_.backpressure_waits;
      pipe_cv_.wait(plock, [this] {
        return !pipe_error_.is_ok() ||
               pipe_queue_.size() + (pipe_inflight_ ? 1 : 0) <
                   pipeline_depth_;
      });
      if (!pipe_error_.is_ok()) return pipe_error_;
    }
  }

  // Swap the dirty set into the sealed-epoch snapshot. The §3.5 quiescence
  // contract holds for the duration of this call, so plain copies are
  // race-free; mutation of the next epoch resumes once the pages below are
  // re-protected and we return.
  //
  // Digests advance to the snapshot here, not after the drain: the device
  // WILL hold the snapshot once the job commits, and the next epoch's
  // want-computation must compare against it — deferring would let a line
  // rewritten to its pre-snapshot value slip past the digest check (the
  // candidate bit only covers the page's first faulting line). A failed
  // drain invalidates the affected pages' digests wholesale instead. No
  // kDigestApply events are emitted: that rule models the single-buffered
  // path, where a digest may not outrun its in-flight batch.
  const std::vector<PageIndex> dirty = region_->dirty_pages();
  PipelineJob job;
  job.pages.reserve(dirty.size());
  std::vector<std::uint64_t> page_lines;
  page_lines.reserve(dirty.size());
  for (PageIndex page : dirty) {
    PipelinePageSnap snap;
    snap.page = page;
    snap.bytes = std::make_unique<std::byte[]>(kPageSize);
    std::memcpy(snap.bytes.get(), region_->page_span(page).data(),
                kPageSize);
    if (track_lines_ && region_->line_digests_valid(page)) {
      std::uint64_t want = region_->candidate_lines(page);
      for (std::size_t l = 0; l < kLinesPerPage; ++l) {
        const std::uint32_t crc =
            crc32c(snap.bytes.get() + l * kCacheLineSize, kCacheLineSize);
        if (crc != region_->line_digest(page, l)) {
          want |= std::uint64_t{1} << l;
          region_->set_line_digest(page, l, crc);
        }
      }
      snap.want = want;
    } else {
      snap.want = ~std::uint64_t{0};
      if (track_lines_) {
        for (std::size_t l = 0; l < kLinesPerPage; ++l) {
          region_->set_line_digest(
              page, l,
              crc32c(snap.bytes.get() + l * kCacheLineSize,
                     kCacheLineSize));
        }
        region_->mark_line_digests_valid(page);
        ++sync_stats_.digest_rebuilds;
      }
    }
    page_lines.push_back(region_line_to_pool_line(page, 0).value);
    job.pages.push_back(std::move(snap));
  }
  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));

  // Only this (sync_mu_-serialized) producer advances the epoch cursor.
  job.epoch = pipe_next_epoch_++;
  const Epoch sealed = job.epoch;
  // The checker must see the snapshot before any of the drain's pushes;
  // the queue handoff below orders the emissions.
  if (auto* chk = pm_->checker()) chk->on_pipeline_seal(sealed, page_lines);

  {
    std::lock_guard plock(pipe_mu_);
    ++pipe_stats_.async_persists;
    pipe_stats_.pages_snapshotted += job.pages.size();
    pipe_queue_.push_back(std::move(job));
    const std::uint64_t occupancy =
        pipe_queue_.size() + (pipe_inflight_ ? 1 : 0);
    pipe_stats_.queue_occupancy_sum += occupancy;
    pipe_stats_.queue_occupancy_max =
        std::max(pipe_stats_.queue_occupancy_max, occupancy);
  }
  pipe_work_cv_.notify_one();
  return sealed;
}

Result<Epoch> PaxRuntime::wait_for_pipeline_epoch(Epoch epoch) {
  std::unique_lock plock(pipe_mu_);
  pipe_cv_.wait(plock, [this, epoch] {
    return !pipe_error_.is_ok() || pipe_committed_ >= epoch;
  });
  if (pipe_committed_ >= epoch) return epoch;
  return pipe_error_;
}

void PaxRuntime::drain_worker_loop() {
  std::unique_lock plock(pipe_mu_);
  for (;;) {
    pipe_work_cv_.wait(plock, [this] {
      return stop_drain_ || (!pipe_queue_.empty() && pipe_error_.is_ok());
    });
    // Stopping abandons queued snapshots: destruction without their commit
    // behaves like a crash, exactly like the flusher's shutdown.
    if (stop_drain_) return;
    PipelineJob job = std::move(pipe_queue_.front());
    pipe_queue_.pop_front();
    pipe_inflight_ = true;
    plock.unlock();
    const Status st = drain_one(job);
    plock.lock();
    pipe_inflight_ = false;
    if (st.is_ok()) {
      pipe_committed_ = job.epoch;
      ++pipe_stats_.jobs_drained;
    } else if (pipe_error_.is_ok()) {
      pipe_error_ = st;
    }
    pipe_cv_.notify_all();
  }
}

Status PaxRuntime::drain_one(const PipelineJob& job) {
  auto* chk = pm_->checker();
  RuntimeStats delta;
  SyncStats sdelta;
  Status status = Status::ok();

  const std::size_t batch_lines = std::max<std::size_t>(1, sync_batch_lines_);
  std::vector<device::LineUpdate> batch;
  batch.reserve(batch_lines);
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::ok();
    ++delta.device_calls;
    ++delta.sync_batches;
    Status st = device_->sync_lines(batch);
    batch.clear();
    if (!st.is_ok()) {
      if (chk != nullptr) chk->on_sync_batch_fail();
      return st;
    }
    if (chk != nullptr) chk->on_sync_batch_ok();
    return Status::ok();
  };

  std::array<LineIndex, kLinesPerPage> cand;
  std::array<std::size_t, kLinesPerPage> slot;
  std::array<LineData, kLinesPerPage> shadow;
  for (const PipelinePageSnap& snap : job.pages) {
    ++delta.pages_diffed;
    ++sdelta.pages_scanned;
    std::size_t n = 0;
    for (std::size_t l = 0; l < kLinesPerPage; ++l) {
      if ((snap.want >> l) & 1) {
        cand[n] = region_line_to_pool_line(snap.page, l);
        slot[n] = l;
        ++n;
      }
    }
    sdelta.lines_skipped += kLinesPerPage - n;
    if (n == 0) continue;
    ++delta.device_calls;
    device_->peek_lines(std::span(cand.data(), n),
                        std::span(shadow.data(), n));
    for (std::size_t i = 0; i < n && status.is_ok(); ++i) {
      ++delta.lines_diff_checked;
      ++sdelta.lines_diffed;
      const LineData cur = LineData::from_bytes(
          {snap.bytes.get() + slot[i] * kCacheLineSize, kCacheLineSize});
      if (cur == shadow[i]) continue;
      ++delta.lines_dirty_found;
      ++sdelta.lines_synced;
      if (chk != nullptr) chk->on_sync_push(cand[i].value);
      batch.push_back({cand[i], cur});
      if (batch.size() >= batch_lines) status = flush();
    }
    if (!status.is_ok()) break;
  }
  if (status.is_ok()) status = flush();

  if (status.is_ok()) {
    // Seal pulls the epoch-boundary image from the SNAPSHOT: the live
    // region already carries epoch N+1. Every line the device logged this
    // epoch was pushed from this job, so the fallback is defensive only.
    std::unordered_map<std::uint64_t, const PipelinePageSnap*> by_page;
    by_page.reserve(job.pages.size());
    for (const PipelinePageSnap& snap : job.pages) {
      by_page.emplace(snap.page.value, &snap);
    }
    auto pull = [this, &by_page](LineIndex line) -> std::optional<LineData> {
      const PoolOffset off = line.byte_offset() - pool_->data_offset();
      const auto it = by_page.find(off / kPageSize);
      if (it != by_page.end()) {
        return LineData::from_bytes(
            {it->second->bytes.get() + off % kPageSize, kCacheLineSize});
      }
      return LineData::from_bytes({region_->base() + off, kCacheLineSize});
    };
    auto sealed = device_->seal_epoch(pull);
    if (!sealed.ok()) {
      status = sealed.status();
    } else {
      PAX_CHECK_MSG(sealed.value() == job.epoch,
                    "pipeline epoch numbering diverged from the device");
      auto committed = device_->commit_sealed();
      if (!committed.ok()) status = committed.status();
    }
  }

  if (!status.is_ok()) {
    // Snapshot-time digests describe content the device may not hold now;
    // drop the job's pages back to the full-compare path.
    for (const PipelinePageSnap& snap : job.pages) {
      region_->invalidate_line_digests(snap.page);
    }
  }

  std::lock_guard plock(pipe_mu_);
  pipe_rt_delta_.pages_diffed += delta.pages_diffed;
  pipe_rt_delta_.lines_diff_checked += delta.lines_diff_checked;
  pipe_rt_delta_.lines_dirty_found += delta.lines_dirty_found;
  pipe_rt_delta_.device_calls += delta.device_calls;
  pipe_rt_delta_.sync_batches += delta.sync_batches;
  pipe_sync_delta_.pages_scanned += sdelta.pages_scanned;
  pipe_sync_delta_.lines_diffed += sdelta.lines_diffed;
  pipe_sync_delta_.lines_skipped += sdelta.lines_skipped;
  pipe_sync_delta_.lines_synced += sdelta.lines_synced;
  return status;
}

void PaxRuntime::read_snapshot(PoolOffset region_offset,
                               std::span<std::byte> out) {
  PAX_CHECK(region_offset + out.size() <= region_->size());
  // Ranged batch: resolve up to a page worth of committed lines per device
  // call instead of one line at a time. LineData is exactly kCacheLineSize
  // bytes (static_assert in types.hpp), so the chunk buffer is
  // byte-contiguous and unaligned head/tail copies can span lines.
  constexpr std::size_t kChunkLines = kLinesPerPage;
  std::array<LineData, kChunkLines> chunk;
  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = region_offset + done;
    const LineIndex first =
        LineIndex::containing(pool_->data_offset() + cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t remaining = out.size() - done;
    const std::size_t lines_needed =
        (in_line + remaining + kCacheLineSize - 1) / kCacheLineSize;
    const std::size_t lines = std::min(kChunkLines, lines_needed);
    device_->read_committed_lines(first, std::span(chunk.data(), lines));
    const std::size_t n =
        std::min(lines * kCacheLineSize - in_line, remaining);
    std::memcpy(out.data() + done,
                reinterpret_cast<const std::byte*>(chunk.data()) + in_line,
                n);
    done += n;
  }
}

RuntimeStats PaxRuntime::stats() const {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  RuntimeStats out = stats_;
  if (pipeline_depth_ > 0) {
    // Fold in the drain worker's contribution (it never touches stats_
    // directly — sync_mu_ is off-limits to it).
    std::lock_guard plock(pipe_mu_);
    out.pages_diffed += pipe_rt_delta_.pages_diffed;
    out.lines_diff_checked += pipe_rt_delta_.lines_diff_checked;
    out.lines_dirty_found += pipe_rt_delta_.lines_dirty_found;
    out.device_calls += pipe_rt_delta_.device_calls;
    out.sync_batches += pipe_rt_delta_.sync_batches;
  }
  return out;
}

SyncStats PaxRuntime::sync_stats() const {
  std::lock_guard lock(sync_mu_);
  const check::LockToken sync_token = sync_lock_token();
  SyncStats out = sync_stats_;
  if (pipeline_depth_ > 0) {
    std::lock_guard plock(pipe_mu_);
    out.pages_scanned += pipe_sync_delta_.pages_scanned;
    out.lines_diffed += pipe_sync_delta_.lines_diffed;
    out.lines_skipped += pipe_sync_delta_.lines_skipped;
    out.lines_synced += pipe_sync_delta_.lines_synced;
  }
  return out;
}

PipelineStats PaxRuntime::pipeline_stats() const {
  std::lock_guard plock(pipe_mu_);
  return pipe_stats_;
}

}  // namespace pax::libpax
