#include "pax/libpax/runtime.hpp"

#include <array>
#include <cstring>
#include <unordered_map>

#include "pax/common/check.hpp"
#include "pax/common/log.hpp"

namespace pax::libpax {
namespace {

// Per-device remembered vPM base, so reopening a pool maps the region at the
// same address and recovered raw pointers stay valid (within one process;
// across processes the global fixed hint does the same job).
std::mutex g_base_mu;
std::unordered_map<const pmem::PmemDevice*, std::uintptr_t>& base_registry() {
  static std::unordered_map<const pmem::PmemDevice*, std::uintptr_t> reg;
  return reg;
}

// Reads one cache line as raw 64-bit words, outside TSan's view. The
// mutator-vs-flusher diff race is benign by contract (§3.5): a page stays
// writable and dirty until persist() re-protects it, so whatever torn value
// this captures is re-examined by a later, quiesced diff before it can be
// committed. memcmp/memcpy would route through the sanitizer's interceptors
// regardless of caller annotation, hence the hand-rolled word loads. Both
// the legacy and batched diff paths go through here so either configuration
// is TSan-clean under a live flusher.
#if defined(__clang__) || defined(__GNUC__)
__attribute__((no_sanitize("thread")))
#endif
LineData capture_line(const std::byte* src) {
  constexpr std::size_t kWords = kCacheLineSize / sizeof(std::uint64_t);
  std::uint64_t words[kWords];
  const auto* in = reinterpret_cast<const std::uint64_t*>(src);
  for (std::size_t i = 0; i < kWords; ++i) words[i] = in[i];
  LineData out;
  std::memcpy(out.bytes.data(), words, kCacheLineSize);  // locals: race-free
  return out;
}

}  // namespace

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::map_pool(
    const std::string& path, std::size_t pool_size,
    const RuntimeOptions& options) {
  auto pm = pmem::PmemDevice::open_file(path, pool_size, /*create=*/true);
  if (!pm.ok()) return pm.status();
  auto owned = std::move(pm).value();
  pmem::PmemDevice* raw = owned.get();
  return build(std::move(owned), raw, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::create_in_memory(
    std::size_t pool_size, const RuntimeOptions& options) {
  auto owned = pmem::PmemDevice::create_in_memory(pool_size);
  pmem::PmemDevice* raw = owned.get();
  return build(std::move(owned), raw, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::attach(
    pmem::PmemDevice* pm, const RuntimeOptions& options) {
  return build(nullptr, pm, options);
}

Result<std::unique_ptr<PaxRuntime>> PaxRuntime::build(
    std::unique_ptr<pmem::PmemDevice> owned_pm, pmem::PmemDevice* pm,
    const RuntimeOptions& options) {
  if (options.log_size % kPageSize != 0) {
    return invalid_argument("log_size must be page-aligned");
  }
  if (pm->size() % kPageSize != 0) {
    return invalid_argument("pool size must be page-aligned");
  }
  if (options.device.stripes == 0) {
    return invalid_argument("device.stripes must be >= 1");
  }
  if (options.device.persist_workers == 0) {
    return invalid_argument("device.persist_workers must be >= 1");
  }
  if (options.sync_batch_lines == 0) {
    return invalid_argument("sync_batch_lines must be >= 1");
  }
  if (options.diff_workers == 0) {
    return invalid_argument("diff_workers must be >= 1");
  }

  auto rt = std::unique_ptr<PaxRuntime>(new PaxRuntime());
  rt->owned_pm_ = std::move(owned_pm);
  rt->pm_ = pm;

  // Open the pool; a never-formatted device (magic == 0) is formatted.
  if (pm->load_u64(0) == 0) {
    auto created = pmem::PmemPool::create(pm, options.log_size);
    if (!created.ok()) return created.status();
    rt->pool_ = created.value();
  } else {
    auto opened = pmem::PmemPool::open(pm);
    if (!opened.ok()) return opened.status();
    rt->pool_ = opened.value();
  }

  // Roll back any interrupted epoch before anything touches the data (§3.4).
  auto report = device::recover_pool(*rt->pool_);
  if (!report.ok()) return report.status();
  rt->recovery_report_ = report.value();

  rt->device_ =
      std::make_unique<device::PaxDevice>(&*rt->pool_, options.device);

  // Map the vPM region: an explicit hint wins (replication failover),
  // otherwise reuse the base any earlier mapping of this device had.
  std::uintptr_t hint = options.vpm_base_hint;
  if (hint == 0) {
    std::lock_guard lock(g_base_mu);
    auto it = base_registry().find(pm);
    if (it != base_registry().end()) hint = it->second;
  }
  const std::size_t region_size = rt->pool_->data_size() & ~(kPageSize - 1);
  auto region = VpmRegion::create(region_size, hint);
  if (!region.ok()) return region.status();
  rt->region_ = std::move(region).value();
  {
    std::lock_guard lock(g_base_mu);
    base_registry()[pm] =
        reinterpret_cast<std::uintptr_t>(rt->region_->base());
  }

  // Seed the region from the recovered PM image.
  pm->load(rt->pool_->data_offset(),
           {rt->region_->base(), rt->region_->size()});

  // Arm write tracking *before* the heap constructor so a fresh heap's
  // format writes are captured like any application store.
  PAX_RETURN_IF_ERROR(rt->region_->protect_all());

  rt->heap_ =
      std::make_unique<PaxHeap>(rt->region_->base(), rt->region_->size());
  register_heap(rt->region_->base(), rt->heap_.get());

  rt->sync_batch_lines_ = options.sync_batch_lines;
  rt->diff_workers_ = options.diff_workers;
  rt->diff_fanout_min_pages_ = options.diff_fanout_min_pages;
  if (rt->diff_workers_ > 1) {
    rt->diff_pool_ =
        std::make_unique<common::ThreadPool>(rt->diff_workers_ - 1);
  }

  if (options.start_flusher_thread) {
    rt->flusher_ = std::thread([rt_ptr = rt.get(),
                                interval = options.flusher_interval] {
      std::unique_lock lock(rt_ptr->flusher_mu_);
      while (!rt_ptr->stop_flusher_.load(std::memory_order_acquire)) {
        lock.unlock();
        rt_ptr->sync_step();
        lock.lock();
        // Interruptible interval: the destructor flips stop_flusher_ and
        // notifies, so teardown waits one sync_step at most, not a full
        // sleep_for(interval).
        rt_ptr->flusher_cv_.wait_for(lock, interval, [rt_ptr] {
          return rt_ptr->stop_flusher_.load(std::memory_order_acquire);
        });
      }
    });
  }

  PAX_LOG_INFO("pool mapped: epoch=%llu, vPM %zu bytes at %p%s",
               static_cast<unsigned long long>(rt->pool_->committed_epoch()),
               rt->region_->size(), static_cast<void*>(rt->region_->base()),
               rt->heap_->recovered() ? " (heap recovered)" : " (heap fresh)");
  return rt;
}

PaxRuntime::~PaxRuntime() {
  if (flusher_.joinable()) {
    {
      std::lock_guard lock(flusher_mu_);
      stop_flusher_.store(true, std::memory_order_release);
    }
    flusher_cv_.notify_all();
    flusher_.join();
  }
  if (region_) unregister_heap(region_->base());
  // Deliberately no flush/persist: destruction without persist() behaves
  // like a crash, which is what the snapshot contract promises.
}

Status PaxRuntime::sync_pages(const std::vector<PageIndex>& pages) {
  if (sync_batch_lines_ <= 1) return sync_pages_legacy(pages);
  return sync_pages_batched(pages);
}

Status PaxRuntime::sync_pages_legacy(const std::vector<PageIndex>& pages) {
  for (PageIndex page : pages) {
    ++stats_.pages_diffed;
    const std::byte* page_bytes = region_->page_span(page).data();
    for (std::size_t l = 0; l < kLinesPerPage; ++l) {
      ++stats_.lines_diff_checked;
      const LineIndex pool_line = region_line_to_pool_line(page, l);
      const LineData cur = capture_line(page_bytes + l * kCacheLineSize);
      ++stats_.device_calls;
      const LineData device_copy = device_->peek_line(pool_line);
      if (cur == device_copy) continue;
      ++stats_.lines_dirty_found;
      stats_.device_calls += 2;
      PAX_RETURN_IF_ERROR(device_->write_intent(pool_line));
      device_->writeback_line(pool_line, cur);
    }
  }
  return Status::ok();
}

Status PaxRuntime::sync_pages_batched(const std::vector<PageIndex>& pages) {
  if (pages.empty()) return Status::ok();

  // Static partition: shard s diffs pages [len*s/shards, len*(s+1)/shards).
  // Each shard owns its stats delta and LineUpdate buffer; the device's
  // stripe locking makes concurrent peek_lines/sync_lines safe.
  const std::size_t shards =
      (diff_pool_ == nullptr || pages.size() < diff_fanout_min_pages_)
          ? 1
          : std::min<std::size_t>(diff_workers_, pages.size());

  struct Shard {
    RuntimeStats delta;
    Status status = Status::ok();
  };
  std::vector<Shard> results(shards);

  auto diff_shard = [&](std::size_t s) {
    Shard& out = results[s];
    std::vector<device::LineUpdate> batch;
    batch.reserve(sync_batch_lines_);
    std::array<LineIndex, kLinesPerPage> lines;
    std::array<LineData, kLinesPerPage> shadow;

    auto flush = [&]() -> Status {
      if (batch.empty()) return Status::ok();
      ++out.delta.device_calls;
      ++out.delta.sync_batches;
      Status st = device_->sync_lines(batch);
      batch.clear();
      return st;
    };

    const std::size_t lo = pages.size() * s / shards;
    const std::size_t hi = pages.size() * (s + 1) / shards;
    for (std::size_t p = lo; p < hi; ++p) {
      const PageIndex page = pages[p];
      ++out.delta.pages_diffed;
      const std::byte* page_bytes = region_->page_span(page).data();
      for (std::size_t l = 0; l < kLinesPerPage; ++l) {
        lines[l] = region_line_to_pool_line(page, l);
      }
      ++out.delta.device_calls;
      device_->peek_lines(lines, shadow);
      for (std::size_t l = 0; l < kLinesPerPage; ++l) {
        ++out.delta.lines_diff_checked;
        const LineData cur = capture_line(page_bytes + l * kCacheLineSize);
        if (cur == shadow[l]) continue;
        ++out.delta.lines_dirty_found;
        batch.push_back({lines[l], cur});
        if (batch.size() >= sync_batch_lines_) {
          Status st = flush();
          if (!st.is_ok()) {
            out.status = st;
            return;
          }
        }
      }
    }
    out.status = flush();
  };

  if (shards == 1) {
    diff_shard(0);
  } else {
    diff_pool_->parallel_for(shards, diff_shard);
  }

  // Merge shard deltas (caller holds sync_mu_; workers have joined).
  Status first = Status::ok();
  for (const Shard& sh : results) {
    stats_.pages_diffed += sh.delta.pages_diffed;
    stats_.lines_diff_checked += sh.delta.lines_diff_checked;
    stats_.lines_dirty_found += sh.delta.lines_dirty_found;
    stats_.device_calls += sh.delta.device_calls;
    stats_.sync_batches += sh.delta.sync_batches;
    if (first.is_ok() && !sh.status.is_ok()) first = sh.status;
  }
  return first;
}

void PaxRuntime::sync_step() {
  std::lock_guard lock(sync_mu_);
  ++stats_.sync_steps;
  // Pages stay writable and dirty until persist() re-protects them, so any
  // store racing this diff is re-examined later; see runtime.hpp.
  Status s = sync_pages(region_->dirty_pages());
  if (!s.is_ok()) {
    PAX_LOG_WARN("background sync: %s", s.to_string().c_str());
    return;
  }
  device_->tick();
  // Complete a pending non-blocking persist off the application's path.
  if (device_->has_sealed_epoch()) {
    auto committed = device_->commit_sealed();
    if (!committed.ok()) {
      PAX_LOG_WARN("async commit: %s",
                   committed.status().to_string().c_str());
    }
  }
}

Result<Epoch> PaxRuntime::persist_async() {
  std::lock_guard lock(sync_mu_);
  if (device_->has_sealed_epoch()) {
    // Epochs commit in order: finish the previous one first.
    auto committed = device_->commit_sealed();
    if (!committed.ok()) return committed.status();
  }

  const std::vector<PageIndex> dirty = region_->dirty_pages();
  PAX_RETURN_IF_ERROR(sync_pages(dirty));

  auto pull = [this](LineIndex line) -> std::optional<LineData> {
    const PoolOffset off = line.byte_offset() - pool_->data_offset();
    return LineData::from_bytes({region_->base() + off, kCacheLineSize});
  };
  auto sealed = device_->seal_epoch(pull);
  if (!sealed.ok()) return sealed.status();

  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));
  return sealed;
}

Result<Epoch> PaxRuntime::complete_persist() {
  std::lock_guard lock(sync_mu_);
  return device_->commit_sealed();
}

Result<Epoch> PaxRuntime::persist() {
  std::lock_guard lock(sync_mu_);
  ++stats_.persists;

  const std::vector<PageIndex> dirty = region_->dirty_pages();
  PAX_RETURN_IF_ERROR(sync_pages(dirty));

  // The pull callback hands the device the region's (authoritative) current
  // line; re-protecting the pages below is the ownership-revocation half of
  // the RdShared analogy.
  auto pull = [this](LineIndex line) -> std::optional<LineData> {
    const PoolOffset off = line.byte_offset() - pool_->data_offset();
    return LineData::from_bytes({region_->base() + off, kCacheLineSize});
  };
  auto committed = device_->persist(pull);
  if (!committed.ok()) return committed.status();

  PAX_RETURN_IF_ERROR(region_->protect_pages(dirty));
  return committed;
}

void PaxRuntime::read_snapshot(PoolOffset region_offset,
                               std::span<std::byte> out) {
  PAX_CHECK(region_offset + out.size() <= region_->size());
  // Ranged batch: resolve up to a page worth of committed lines per device
  // call instead of one line at a time. LineData is exactly kCacheLineSize
  // bytes (static_assert in types.hpp), so the chunk buffer is
  // byte-contiguous and unaligned head/tail copies can span lines.
  constexpr std::size_t kChunkLines = kLinesPerPage;
  std::array<LineData, kChunkLines> chunk;
  std::size_t done = 0;
  while (done < out.size()) {
    const PoolOffset cur = region_offset + done;
    const LineIndex first =
        LineIndex::containing(pool_->data_offset() + cur);
    const std::size_t in_line = cur % kCacheLineSize;
    const std::size_t remaining = out.size() - done;
    const std::size_t lines_needed =
        (in_line + remaining + kCacheLineSize - 1) / kCacheLineSize;
    const std::size_t lines = std::min(kChunkLines, lines_needed);
    device_->read_committed_lines(first, std::span(chunk.data(), lines));
    const std::size_t n =
        std::min(lines * kCacheLineSize - in_line, remaining);
    std::memcpy(out.data() + done,
                reinterpret_cast<const std::byte*>(chunk.data()) + in_line,
                n);
    done += n;
  }
}

RuntimeStats PaxRuntime::stats() const {
  std::lock_guard lock(sync_mu_);
  return stats_;
}

}  // namespace pax::libpax
