// EpochGroupCommit — cross-runtime epoch group commit.
//
// A serving frontend that shards its keyspace across N independent
// PaxRuntimes (one pool, one undo log, one epoch sequence each) pays one
// device-mediated commit per shard per durability point. Committing each
// shard the moment it has pending writes multiplies log flushes by the
// shard count; the classic fix is group commit: accumulate dirty shards,
// then issue ONE commit wave covering all of them, so a single log-flush
// round amortizes across every write that joined the wave.
//
// The coordinator leans on the PR 6 epoch pipeline to keep the wave off
// the request path: commit_wave() seals one epoch per dirty shard with
// persist_async() — an O(dirty-pages) snapshot swap per shard — and only
// then waits for the sealed epochs' durability (wait_persisted). The
// drains of all participating shards overlap each other AND ongoing
// request processing; the wave's wall time is max(shard drains), not the
// sum, and mutators never stall behind it.
//
// Two commit policies share the bookkeeping so frontends can switch (and
// benches can compare) without re-plumbing:
//
//   * commit_wave()  — group commit: seal every dirty shard, wait for all.
//   * commit_one(i)  — per-shard independent commit: seal and wait shard i
//                      alone (the baseline group commit is measured
//                      against; see bench/abl_paxkv.cpp).
//
// Threading: mark_dirty() is called by request workers concurrently;
// commit_wave()/commit_one() may be called from any thread (waves are
// serialized against each other by wave_mu_). Writes marked while a wave
// is in flight simply join the next wave — the swap under mu_ makes the
// cut atomic. QUIESCENCE is the participant's job: the seal callable must
// enforce the §3.5 contract for its own shard (e.g. ShardedMap::
// persist_async takes every shard-map lock for the duration of the swap).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"

namespace pax::libpax {

class PaxRuntime;

struct GroupCommitStats {
  std::uint64_t waves = 0;        // commit_wave calls that sealed >= 1 shard
  std::uint64_t empty_waves = 0;  // commit_wave calls with nothing dirty
  std::uint64_t wave_shard_seals = 0;  // persist_async calls across waves
  std::uint64_t wave_ops = 0;          // writes covered by a wave
  std::uint64_t max_wave_shards = 0;   // widest wave
  std::uint64_t max_wave_ops = 0;      // most writes one wave covered
  std::uint64_t independent_commits = 0;  // commit_one seals
  std::uint64_t independent_ops = 0;      // writes covered by commit_one
};

class EpochGroupCommit {
 public:
  /// One shard. `seal` runs that shard's persist_async under the shard's
  /// own quiescence discipline and returns the sealed epoch; when empty it
  /// defaults to runtime->persist_async() (bare runtime, no container
  /// locks). `runtime` is what the coordinator waits on.
  struct Participant {
    PaxRuntime* runtime = nullptr;
    std::function<Result<Epoch>()> seal;
  };

  explicit EpochGroupCommit(std::vector<Participant> participants);

  std::size_t participant_count() const { return participants_.size(); }

  /// Notes `ops` completed writes on shard `index`; the shard joins the
  /// next wave (or its next commit_one). Thread safe.
  void mark_dirty(std::size_t index, std::uint64_t ops = 1);

  /// Writes marked dirty and not yet covered by any commit. Thread safe.
  std::uint64_t pending_ops() const;

  struct WaveResult {
    std::uint64_t wave = 0;  // 1-based wave number; 0 = nothing was dirty
    std::uint64_t shards = 0;  // participants sealed by this wave
    std::uint64_t ops = 0;     // writes the wave covered
    /// Sealed epoch per participant; 0 where the shard sat the wave out.
    std::vector<Epoch> epochs;
  };

  /// Group commit: atomically takes the dirty set, seals every dirty
  /// shard (their pipeline drains overlap), then waits until every sealed
  /// epoch is durable. On error the uncovered ops are re-marked dirty so a
  /// later wave retries them; the first error is returned.
  Result<WaveResult> commit_wave();

  /// Independent per-shard commit of shard `index` (covers only its own
  /// pending ops): seal + wait, one log-flush round for this shard alone.
  /// Commits of DIFFERENT shards run concurrently (per-shard serialization
  /// only); a frontend must pick one policy — racing commit_one against
  /// commit_wave on the same participant would double-seal its epoch.
  Result<Epoch> commit_one(std::size_t index);

  GroupCommitStats stats() const;

 private:
  std::vector<Participant> participants_;

  mutable std::mutex mu_;  // dirty set + stats
  std::vector<std::uint64_t> dirty_ops_;
  std::uint64_t pending_ops_ = 0;
  GroupCommitStats stats_;

  std::mutex wave_mu_;  // serializes whole waves; taken before mu_
  /// Per-shard serialization for commit_one (independent mode): shards
  /// commit concurrently with each other, never with themselves.
  std::vector<std::mutex> shard_mu_;
};

}  // namespace pax::libpax
