// The vPM region: the application-visible window onto the pool's data extent.
//
// libpax maps an anonymous region at a fixed address hint (so raw pointers
// inside persistent structures stay valid across process restarts, the same
// trick PMDK's mmap hint plays), seeds it from PM, and write-protects it.
// The first store to each page raises a write fault; the SIGSEGV handler
// marks the page dirty and unprotects it. This is precisely the paging
// hybrid the paper proposes in §5.1: the fault is the device's RdOwn-
// equivalent first-touch notification, after which libpax tracks the page's
// modifications at cache-line granularity by diffing against the device's
// copy (see PaxRuntime::sync_dirty_lines).
//
// Faults on non-vPM addresses are forwarded to the previously installed
// SIGSEGV disposition, so real bugs still crash loudly.
//
// Line-granular tracking (optional, `track_lines`): the region additionally
// keeps, per page, a 64-bit candidate-line bitmap and a per-line 32-bit
// CRC32C digest of the line's last-synced contents. The fault handler sets
// the faulting line's candidate bit (the one store the kernel lets us
// observe exactly); the diff path updates digests at capture time and skips
// lines whose digest still matches without touching the device shadow —
// persist cost then scales with lines written, not pages touched. Candidate
// bits force a memcmp regardless of digest equality (the digest-collision
// fallback); a line modified while its page was already writable is caught
// by its digest mismatch instead, which is probabilistic with a 2^-32
// per-line false-clean window — the price of sub-page tracking without
// per-line faults. `track_lines = false` keeps the region bit-for-bit on
// the page-granular path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"

namespace pax::libpax {

class VpmRegion {
 public:
  /// Maps `size` bytes (page-aligned) and installs the fault handler. The
  /// region starts fully unprotected (writable); call protect_all() after
  /// seeding it. `fixed_hint`, if nonzero, requests a specific base address
  /// — PaxRuntime passes the address a pool was mapped at before, so that
  /// recovered raw pointers stay valid when the same pool is reopened.
  /// `track_lines` allocates the per-page candidate bitmaps and per-line
  /// digests for line-granular dirty tracking.
  static Result<std::unique_ptr<VpmRegion>> create(std::size_t size,
                                                   std::uintptr_t fixed_hint = 0,
                                                   bool track_lines = false);

  ~VpmRegion();
  VpmRegion(const VpmRegion&) = delete;
  VpmRegion& operator=(const VpmRegion&) = delete;

  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  std::size_t page_count() const { return size_ / kPageSize; }

  std::span<std::byte> page_span(PageIndex page) const {
    return {base_ + page.byte_offset(), kPageSize};
  }

  /// Write-protects every page and clears the dirty set: the state at an
  /// epoch boundary.
  Status protect_all();

  /// Write-protects the given pages and clears their dirty flags (used
  /// after persist() handled exactly those pages). Contiguous page runs are
  /// merged into single mprotect calls, so re-arming a densely dirty region
  /// costs O(runs) syscalls, not O(pages). `pages` must be sorted ascending
  /// (dirty_pages() returns them that way).
  Status protect_pages(std::span<const PageIndex> pages);

  /// Pages written since their last protection, in index order. Does not
  /// clear flags or re-protect — pages remain writable until protected
  /// again, so a concurrent writer cannot slip through unseen. O(1) when
  /// nothing is dirty (counter early-out), O(page_count) otherwise.
  std::vector<PageIndex> dirty_pages() const;

  bool is_dirty(PageIndex page) const;
  std::uint64_t fault_count() const {
    return faults_.load(std::memory_order_relaxed);
  }

  /// Dirty pages right now (approximate under concurrent faulting — exact
  /// whenever mutators are quiesced).
  std::size_t dirty_page_count() const {
    return dirty_count_.load(std::memory_order_acquire);
  }

  /// mprotect invocations made by protect_all/protect_pages (coalescing
  /// observability; fault-path unprotects are not counted).
  std::uint64_t protect_syscall_count() const {
    return protect_syscalls_.load(std::memory_order_relaxed);
  }

  /// Dispatches a fault at `addr` (called by the global handler). Returns
  /// true if the address belongs to this region and was handled.
  bool handle_fault(void* addr);

  // --- Line-granular tracking (track_lines mode) -------------------------

  bool track_lines() const { return track_lines_; }

  /// True once the page's per-line digests reflect its last-synced contents.
  /// Fresh regions (and therefore every crash/recovery reattach) start with
  /// every page invalid: the first diff of a page runs the full page-shadow
  /// compare and seeds the digests.
  bool line_digests_valid(PageIndex page) const {
    return track_lines_ &&
           digests_valid_[page.value].load(std::memory_order_acquire) != 0;
  }
  void mark_line_digests_valid(PageIndex page) {
    digests_valid_[page.value].store(1, std::memory_order_release);
  }
  /// Drops the page back to the full-compare path (its next diff reseeds
  /// every digest). The pipelined runtime calls this when a drain job fails
  /// after snapshot-time digests were already advanced: invalidating is
  /// always safe — it only costs one full-page compare.
  void invalidate_line_digests(PageIndex page) {
    if (track_lines_) {
      digests_valid_[page.value].store(0, std::memory_order_release);
    }
  }

  /// Candidate-line bitmap: bit l set means line l must be memcmp'd against
  /// the device shadow regardless of its digest (set by the fault handler
  /// for the one store it observes; cleared when the page is re-protected).
  std::uint64_t candidate_lines(PageIndex page) const {
    return line_bits_[page.value].load(std::memory_order_acquire);
  }

  /// CRC32C of the line's last-synced contents. Only meaningful while
  /// line_digests_valid(page). Written by the (single, sync_mu_-serialized)
  /// diff owner of the page; the test suite also pokes it to simulate
  /// digest collisions.
  std::uint32_t line_digest(PageIndex page, std::size_t line) const {
    return digests_[page.value * kLinesPerPage + line];
  }
  void set_line_digest(PageIndex page, std::size_t line, std::uint32_t crc) {
    digests_[page.value * kLinesPerPage + line] = crc;
  }

 private:
  VpmRegion(std::byte* b, std::size_t size, bool track_lines);

  std::byte* base_;
  std::size_t size_;
  bool track_lines_;
  // One flag per page; written from the signal handler (atomics only).
  std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_;
  std::atomic<std::uint64_t> faults_{0};
  // Count of set dirty flags, maintained by exchange-guarded transitions so
  // double faults / double clears never skew it. Lets dirty_pages() skip the
  // O(page_count) scan when the region is clean (the common flusher case).
  std::atomic<std::size_t> dirty_count_{0};
  std::atomic<std::uint64_t> protect_syscalls_{0};

  // track_lines mode only (null otherwise). Candidate bits are written from
  // the signal handler (lock-free atomics); digests only from the page's
  // diff owner, so a plain array suffices.
  std::unique_ptr<std::atomic<std::uint64_t>[]> line_bits_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> digests_valid_;
  std::unique_ptr<std::uint32_t[]> digests_;

  static_assert(kLinesPerPage == 64,
                "candidate-line bitmaps assume 64 lines per page");
};

}  // namespace pax::libpax
