// The vPM region: the application-visible window onto the pool's data extent.
//
// libpax maps an anonymous region at a fixed address hint (so raw pointers
// inside persistent structures stay valid across process restarts, the same
// trick PMDK's mmap hint plays), seeds it from PM, and write-protects it.
// The first store to each page raises a write fault; the SIGSEGV handler
// marks the page dirty and unprotects it. This is precisely the paging
// hybrid the paper proposes in §5.1: the fault is the device's RdOwn-
// equivalent first-touch notification, after which libpax tracks the page's
// modifications at cache-line granularity by diffing against the device's
// copy (see PaxRuntime::sync_dirty_lines).
//
// Faults on non-vPM addresses are forwarded to the previously installed
// SIGSEGV disposition, so real bugs still crash loudly.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"

namespace pax::libpax {

class VpmRegion {
 public:
  /// Maps `size` bytes (page-aligned) and installs the fault handler. The
  /// region starts fully unprotected (writable); call protect_all() after
  /// seeding it. `fixed_hint`, if nonzero, requests a specific base address
  /// — PaxRuntime passes the address a pool was mapped at before, so that
  /// recovered raw pointers stay valid when the same pool is reopened.
  static Result<std::unique_ptr<VpmRegion>> create(std::size_t size,
                                                   std::uintptr_t fixed_hint = 0);

  ~VpmRegion();
  VpmRegion(const VpmRegion&) = delete;
  VpmRegion& operator=(const VpmRegion&) = delete;

  std::byte* base() const { return base_; }
  std::size_t size() const { return size_; }
  std::size_t page_count() const { return size_ / kPageSize; }

  std::span<std::byte> page_span(PageIndex page) const {
    return {base_ + page.byte_offset(), kPageSize};
  }

  /// Write-protects every page and clears the dirty set: the state at an
  /// epoch boundary.
  Status protect_all();

  /// Write-protects the given pages and clears their dirty flags (used
  /// after persist() handled exactly those pages). Contiguous page runs are
  /// merged into single mprotect calls, so re-arming a densely dirty region
  /// costs O(runs) syscalls, not O(pages). `pages` must be sorted ascending
  /// (dirty_pages() returns them that way).
  Status protect_pages(std::span<const PageIndex> pages);

  /// Pages written since their last protection, in index order. Does not
  /// clear flags or re-protect — pages remain writable until protected
  /// again, so a concurrent writer cannot slip through unseen. O(1) when
  /// nothing is dirty (counter early-out), O(page_count) otherwise.
  std::vector<PageIndex> dirty_pages() const;

  bool is_dirty(PageIndex page) const;
  std::uint64_t fault_count() const {
    return faults_.load(std::memory_order_relaxed);
  }

  /// Dirty pages right now (approximate under concurrent faulting — exact
  /// whenever mutators are quiesced).
  std::size_t dirty_page_count() const {
    return dirty_count_.load(std::memory_order_acquire);
  }

  /// mprotect invocations made by protect_all/protect_pages (coalescing
  /// observability; fault-path unprotects are not counted).
  std::uint64_t protect_syscall_count() const {
    return protect_syscalls_.load(std::memory_order_relaxed);
  }

  /// Dispatches a fault at `addr` (called by the global handler). Returns
  /// true if the address belongs to this region and was handled.
  bool handle_fault(void* addr);

 private:
  VpmRegion(std::byte* b, std::size_t size);

  std::byte* base_;
  std::size_t size_;
  // One flag per page; written from the signal handler (atomics only).
  std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_;
  std::atomic<std::uint64_t> faults_{0};
  // Count of set dirty flags, maintained by exchange-guarded transitions so
  // double faults / double clears never skew it. Lets dirty_pages() skip the
  // O(page_count) scan when the region is clean (the common flusher case).
  std::atomic<std::size_t> dirty_count_{0};
  std::atomic<std::uint64_t> protect_syscalls_{0};
};

}  // namespace pax::libpax
