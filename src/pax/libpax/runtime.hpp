// PaxRuntime: the top of the libpax stack — the object Listing 1's
// HWSnapshotter::map_pool() returns in the paper.
//
// It assembles the full PAX pipeline for one pool:
//
//   pool file / in-memory PM  →  PmemPool  →  recovery (§3.4)
//        →  PaxDevice (undo logger, HBM buffer, write-back coordinator)
//        →  VpmRegion (write-fault tracking — the §5.1 paging frontend)
//        →  PaxHeap + PaxStlAllocator (unmodified std:: containers)
//
// The application mutates the region with plain loads and stores. First
// stores to a page fault once per epoch (the RdOwn-equivalent); persist()
// diffs dirty pages against the device's copy at cache-line granularity,
// undo-logs and writes back exactly the changed lines, commits the epoch
// cell, and re-arms the page protections. After a crash, map_pool() rolls
// the pool back to the last persist() — the application cannot observe a
// partially applied epoch.
//
// Thread safety: many application threads may mutate the region; persist()
// must be called while no thread is mutating (§3.5, the paper's contract).
// The optional background flusher thread performs the same work as
// sync_step() under an internal lock and respects the same contract
// (it only *adds* log/write-back progress; it never commits an epoch).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/common/status.hpp"
#include "pax/common/thread_pool.hpp"
#include "pax/common/types.hpp"
#include "pax/device/pax_device.hpp"
#include "pax/device/recovery.hpp"
#include "pax/libpax/heap.hpp"
#include "pax/libpax/stl_allocator.hpp"
#include "pax/libpax/sync_tuner.hpp"
#include "pax/libpax/vpm_region.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::libpax {

struct RuntimeOptions {
  /// Undo-log extent size (page-aligned). Bounds the per-epoch write set:
  /// ~96 B of log per first-touched line.
  std::size_t log_size = 4 << 20;
  device::DeviceConfig device = device::DeviceConfig::defaults();
  /// Start a background thread running sync_step() periodically: the
  /// "asynchronous logging and write back" of §3.2 without explicit calls.
  bool start_flusher_thread = false;
  std::chrono::microseconds flusher_interval{500};
  /// Map the vPM region at this exact base (0 = automatic). Needed when a
  /// pool replicated from another node/runtime must present recovered raw
  /// pointers at the address the origin used (replication failover).
  std::uintptr_t vpm_base_hint = 0;
  /// Max lines carried per batched device sync call. Dirty lines accumulate
  /// into per-worker buffers flushed through PaxDevice::sync_lines, which
  /// fuses write_intent + writeback_line and appends a stripe group's undo
  /// records under one log-mutex hold. 1 = the legacy per-line path
  /// (peek_line / write_intent / writeback_line), bit-for-bit identical to
  /// pre-batching behavior.
  std::size_t sync_batch_lines = 256;
  /// Parallelism of the dirty-page diff (caller participates; diff_workers
  /// total threads touch pages). 1 = diff on the calling thread only.
  unsigned diff_workers = 4;
  /// Don't fan out the diff below this many dirty pages — thread-pool
  /// handoff costs more than diffing a handful of pages inline.
  std::size_t diff_fanout_min_pages = 16;
  /// Line-granular dirty tracking (vpm_region.hpp): per-page candidate
  /// bitmaps plus per-line digests of the last-synced contents let the diff
  /// skip lines whose digest still matches without peeking the device
  /// shadow — persist cost then follows lines written, not pages touched.
  /// false keeps the diff (and every stat it reports) bit-for-bit on the
  /// page-granular path.
  bool track_lines = true;
  /// Let a SyncTuner pick sync_batch_lines and the effective diff_workers
  /// per epoch from the observed dirty-set size, dirty-line density, and
  /// device stripe contention. The static knobs above still size the worker
  /// pool; the pins below freeze one knob while the other adapts.
  bool adaptive_sync = false;
  std::size_t adaptive_pin_batch_lines = 0;  // 0 = adapt batch size
  unsigned adaptive_pin_workers = 0;         // 0 = adapt worker count
  /// EWMA smoothing factor for the tuner's density/contention signals
  /// (SyncTunerConfig::ewma_alpha): 1.0 = raw samples, lower values damp
  /// epoch-to-epoch oscillation on alternating dense/sparse workloads.
  double adaptive_ewma_alpha = 1.0;
  /// Relative hysteresis band for tuner decisions
  /// (SyncTunerConfig::hysteresis): 0 = every derivation is adopted.
  double adaptive_hysteresis = 0.0;
  /// Pipelined epochs: persist_async() swaps the dirty set into an
  /// O(dirty-pages) snapshot, re-arms page protection, and returns
  /// immediately; a background drain worker runs diff → sync_lines → seal →
  /// commit per queued snapshot, overlapping persist(N) with mutation of
  /// N+1. The value bounds the drain queue (snapshots enqueued or in
  /// flight); persist_async back-pressures only when it is full. 0 keeps
  /// the non-pipelined behavior above, bit for bit.
  std::size_t pipeline_depth = 0;
  /// Lock-free undo-append ring (device.log_ring_slots passthrough): > 0
  /// switches each log bank's hot-path appends from the log mutex to a
  /// bounded MPMC ring of this many pre-framed slots (rounded up to a power
  /// of two). 0 keeps the mutex append path.
  std::size_t log_ring_slots = 0;

  /// `base` with every source of scheduling nondeterminism pinned: no
  /// flusher thread, single-threaded diff and device persist workers, and
  /// the adaptive tuner (if enabled) locked to one worker. A workload run
  /// under these options emits the identical device event sequence on every
  /// execution — the contract crash-point exploration (check/crashpoint.hpp)
  /// depends on. Byte-identical vPM snapshots additionally require a fixed
  /// vpm_base_hint, which the caller must choose.
  static RuntimeOptions deterministic(RuntimeOptions base);
};

struct RuntimeStats {
  std::uint64_t persists = 0;
  std::uint64_t pages_diffed = 0;
  std::uint64_t lines_diff_checked = 0;
  std::uint64_t lines_dirty_found = 0;
  std::uint64_t sync_steps = 0;
  /// Device API invocations made by the sync path (peek/intent/writeback or
  /// their batched equivalents). The legacy path costs 3 per dirty line;
  /// batching amortizes to ~1 call per page of peeks + 1 per batch of syncs.
  std::uint64_t device_calls = 0;
  /// Batched sync_lines flushes issued (0 on the legacy path).
  std::uint64_t sync_batches = 0;
};

/// Where the sync path's line examinations went. lines_diffed counts lines
/// memcmp'd against a fetched device shadow; lines_skipped counts lines the
/// line tracker proved clean (candidate bit clear, digest match) without
/// touching the shadow; lines_synced counts lines actually pushed. Without
/// track_lines, lines_skipped stays 0 and lines_diffed == the legacy
/// lines_diff_checked.
struct SyncStats {
  std::uint64_t pages_scanned = 0;
  std::uint64_t lines_diffed = 0;
  std::uint64_t lines_skipped = 0;
  std::uint64_t lines_synced = 0;
  /// Pages whose per-line digests were (re)seeded by a full-page compare —
  /// every page's first diff after map/attach goes through this.
  std::uint64_t digest_rebuilds = 0;
  /// SyncTuner consultations (0 unless adaptive_sync).
  std::uint64_t tuner_decisions = 0;
  /// Knob values used by the most recent sync (static or tuner-chosen).
  std::size_t last_batch_lines = 0;
  unsigned last_diff_workers = 0;
};

/// Epoch-pipeline observability (all zero unless pipeline_depth > 0).
struct PipelineStats {
  std::uint64_t async_persists = 0;   // snapshots enqueued
  std::uint64_t jobs_drained = 0;     // snapshots fully committed
  std::uint64_t pages_snapshotted = 0;
  /// persist_async calls that blocked because the drain queue was full.
  std::uint64_t backpressure_waits = 0;
  /// Drain-queue occupancy (queued + in flight, including the new
  /// snapshot) sampled at each enqueue: sum for the mean, and the
  /// high-water mark.
  std::uint64_t queue_occupancy_sum = 0;
  std::uint64_t queue_occupancy_max = 0;
};

class PaxRuntime {
 public:
  /// Opens (creating or recovering) a pool file of `pool_size` bytes.
  static Result<std::unique_ptr<PaxRuntime>> map_pool(
      const std::string& path, std::size_t pool_size,
      const RuntimeOptions& options = {});

  /// Pool on in-memory simulated PM owned by the runtime (for quick starts
  /// and tests that don't need files).
  static Result<std::unique_ptr<PaxRuntime>> create_in_memory(
      std::size_t pool_size, const RuntimeOptions& options = {});

  /// Attaches to an existing (borrowed) PM device — the crash-test hook:
  /// destroy the runtime, crash() the device, attach again, observe
  /// recovery. Reopening the same device reuses the same vPM base address
  /// so recovered raw pointers remain valid.
  static Result<std::unique_ptr<PaxRuntime>> attach(
      pmem::PmemDevice* pm, const RuntimeOptions& options = {});

  /// Tears down without any flush or commit — everything since the last
  /// persist() is discarded, exactly as a crash would.
  ~PaxRuntime();

  PaxRuntime(const PaxRuntime&) = delete;
  PaxRuntime& operator=(const PaxRuntime&) = delete;

  // --- Application surface ----------------------------------------------

  /// The persistent heap; combine with PaxStlAllocator<T> or allocate raw.
  PaxHeap& heap() { return *heap_; }

  template <typename T>
  PaxStlAllocator<T> allocator() {
    return PaxStlAllocator<T>(heap_.get());
  }

  std::byte* vpm_base() const { return region_->base(); }
  std::size_t vpm_size() const { return region_->size(); }

  /// Commits everything modified since the last persist() as one atomic
  /// snapshot (§3.3). Call only while no thread is mutating vPM. With
  /// pipeline_depth > 0 this is persist_async() + a wait for that epoch's
  /// drain to commit (earlier queued epochs commit first, in order).
  Result<Epoch> persist();

  /// Non-blocking persist (the paper's §6 extension): captures the epoch's
  /// modified lines into the device, re-arms page tracking, and returns the
  /// sealed epoch number without waiting for any durable work. The commit
  /// completes on the next sync_step() (the background flusher does this),
  /// complete_persist(), or persist(). Until then the sealed epoch is NOT
  /// yet crash-durable. Same quiescence contract as persist() — but only
  /// for the duration of the call: mutation of the next epoch may resume
  /// the moment it returns.
  ///
  /// With pipeline_depth > 0 the call does no device work at all: it swaps
  /// the dirty set (page snapshot + candidate bitmaps + digests) into a
  /// sealed-epoch snapshot in O(dirty pages), re-arms write protection, and
  /// hands the snapshot to the background drain worker, which runs the
  /// diff → sync_lines → undo-durable → seal → commit sequence while the
  /// application mutates epoch N+1. Blocks only when pipeline_depth
  /// snapshots are already outstanding (back-pressure), or to surface a
  /// sticky drain error.
  Result<Epoch> persist_async();

  /// Completes a pending non-blocking persist; returns the now-committed
  /// epoch (or the last committed epoch if nothing was pending). With
  /// pipeline_depth > 0 this waits for the OLDEST outstanding snapshot's
  /// commit (one queue head, not the whole queue).
  Result<Epoch> complete_persist();

  /// Blocks until `epoch` (a value previously returned by persist_async())
  /// is durably committed, surfacing any sticky drain error. The group-
  /// commit hook: a coordinator seals one epoch per shard runtime with
  /// persist_async(), lets the drains overlap, then waits on each sealed
  /// epoch here (group_commit.hpp). With pipeline_depth > 0 this parks on
  /// the pipeline CVs only — it is safe concurrently with persist_async()
  /// calls from other threads; otherwise it completes the sealed epoch
  /// like complete_persist().
  Result<Epoch> wait_persisted(Epoch epoch);

  /// Snapshot-isolated read: copies [offset, offset+out.size()) of the vPM
  /// region *as of the last committed epoch*, concurrently with writers —
  /// mutations since the last persist are invisible, whether the device
  /// has already staged them (their undo pre-image is returned) or they
  /// still live only in the region (the device's view IS the committed
  /// value). See PaxDevice::read_committed_line.
  void read_snapshot(PoolOffset region_offset, std::span<std::byte> out);

  /// The most recent durable snapshot epoch.
  Epoch committed_epoch() const { return pool_->committed_epoch(); }

  /// One deterministic unit of background work: diff currently-dirty pages,
  /// stage undo records, let the device flush/write back (§3.2). persist()
  /// does all of this itself; sync_step() just moves work off its path.
  void sync_step();

  // --- Introspection ------------------------------------------------------

  device::PaxDevice& device() { return *device_; }
  VpmRegion& region() { return *region_; }
  pmem::PmemDevice& pm() { return *pm_; }
  pmem::PmemPool& pool() { return *pool_; }
  const device::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }
  RuntimeStats stats() const;
  SyncStats sync_stats() const;
  PipelineStats pipeline_stats() const;

 private:
  PaxRuntime() = default;

  static Result<std::unique_ptr<PaxRuntime>> build(
      std::unique_ptr<pmem::PmemDevice> owned_pm, pmem::PmemDevice* pm,
      const RuntimeOptions& options);

  /// Diffs the given pages line-by-line against the device view and pushes
  /// changed lines into the device. Consults the tuner (if adaptive_sync)
  /// for this epoch's knobs, then dispatches to the legacy per-line path
  /// (batch <= 1) or the parallel batched path. Returns first error.
  /// Caller must hold sync_mu_.
  Status sync_pages(const std::vector<PageIndex>& pages);

  /// Pre-batching behavior, preserved verbatim: per line, peek_line →
  /// memdiff → write_intent → writeback_line (3 device calls per dirty
  /// line).
  Status sync_pages_legacy(const std::vector<PageIndex>& pages);

  /// Partitions `pages` across the diff worker pool (`workers` threads
  /// including the caller); each shard diffs its pages with the TSan-safe
  /// line capture and flushes dirty lines through PaxDevice::sync_lines in
  /// batch_lines-sized batches. With track_lines, a page whose digests are
  /// valid peeks only its candidate lines (bitmap | digest mismatch);
  /// otherwise the full page shadow is fetched and the digests (re)seeded.
  Status sync_pages_batched(const std::vector<PageIndex>& pages,
                            std::size_t batch_lines, unsigned workers);

  // --- Epoch pipeline (pipeline_depth > 0) --------------------------------
  //
  // Double-buffered dirty sets: persist_async snapshots the active dirty
  // set (page bytes, want-bitmaps, digests advanced to the snapshot) into a
  // PipelineJob and re-arms protection; the region's live bitmaps then
  // track epoch N+1 while the drain worker replays the snapshot against the
  // device. Lock order: sync_mu_ (app side) > pipe_mu_ (queue state); the
  // drain worker takes ONLY pipe_mu_, so an app thread may block on the
  // pipeline CVs while holding sync_mu_ without deadlocking it.

  struct PipelinePageSnap {
    PageIndex page{0};
    /// Lines to examine against the device shadow: candidate bits plus
    /// snapshot-vs-digest mismatches (all lines when digests were invalid).
    std::uint64_t want = 0;
    std::unique_ptr<std::byte[]> bytes;  // kPageSize copy, quiesced
  };
  struct PipelineJob {
    Epoch epoch = 0;
    std::vector<PipelinePageSnap> pages;
  };

  /// persist_async body once sync_mu_ is held and pipelining is on.
  Result<Epoch> persist_async_pipelined();
  /// Waits (pipe_mu_ CVs) until `epoch` committed or the pipeline failed.
  Result<Epoch> wait_for_pipeline_epoch(Epoch epoch);
  void drain_worker_loop();
  /// Diff snapshot vs device shadow, push, seal (pulling from the
  /// snapshot), commit. Runs on the drain worker; takes no runtime locks.
  Status drain_one(const PipelineJob& job);

  /// PaxCheck discipline event for sync_mu_ (construct right after locking
  /// it). The id distinguishes runtimes sharing one checker.
  check::LockToken sync_lock_token() const {
    return check::LockToken(
        pm_->checker(), check::LockClass::kSyncMu,
        static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(this) >>
                                   4),
        /*shared=*/false);
  }

  PoolOffset page_pool_offset(PageIndex page) const {
    return pool_->data_offset() + page.byte_offset();
  }
  LineIndex region_line_to_pool_line(PageIndex page, std::size_t line) const {
    return LineIndex{(page_pool_offset(page) / kCacheLineSize) + line};
  }

  std::unique_ptr<pmem::PmemDevice> owned_pm_;
  pmem::PmemDevice* pm_ = nullptr;
  std::optional<pmem::PmemPool> pool_;
  device::RecoveryReport recovery_report_;
  std::unique_ptr<device::PaxDevice> device_;
  std::unique_ptr<VpmRegion> region_;
  std::unique_ptr<PaxHeap> heap_;

  mutable std::mutex sync_mu_;  // serializes sync_step/persist internals
  RuntimeStats stats_;
  SyncStats sync_stats_;

  // Sync-path tuning, frozen at build() (validated there).
  std::size_t sync_batch_lines_ = 1;
  unsigned diff_workers_ = 1;
  std::size_t diff_fanout_min_pages_ = 16;
  bool track_lines_ = true;
  std::unique_ptr<common::ThreadPool> diff_pool_;  // max parallelism - 1

  // Adaptive sync (sync_tuner.hpp). The window baselines turn cumulative
  // counters into per-window rates: density from this runtime's own
  // SyncStats, contention from the device-wide stripe-lock totals (which
  // other frontends of a shared device also move — intentionally, since
  // that contention is exactly what the diff workers would fight).
  std::optional<SyncTuner> tuner_;
  std::uint64_t tuner_window_pages_ = 0;
  std::uint64_t tuner_window_lines_ = 0;
  std::uint64_t tuner_window_lock_acq_ = 0;
  std::uint64_t tuner_window_lock_con_ = 0;

  // Epoch pipeline. All fields below pipe_mu_ are guarded by it; the drain
  // worker never takes sync_mu_ (see the lock-order note above).
  std::size_t pipeline_depth_ = 0;
  mutable std::mutex pipe_mu_;
  std::condition_variable pipe_cv_;       // producers + commit waiters
  std::condition_variable pipe_work_cv_;  // wakes the drain worker
  std::deque<PipelineJob> pipe_queue_;
  bool pipe_inflight_ = false;     // worker holds a popped job
  Epoch pipe_next_epoch_ = 0;      // epoch the next snapshot will seal
  Epoch pipe_committed_ = 0;       // last epoch committed via the pipeline
  Status pipe_error_ = Status::ok();  // sticky first drain failure
  PipelineStats pipe_stats_;
  // Drain-side stat deltas, folded into stats()/sync_stats() on read.
  RuntimeStats pipe_rt_delta_;
  SyncStats pipe_sync_delta_;
  std::thread drain_thread_;
  bool stop_drain_ = false;  // under pipe_mu_

  std::thread flusher_;
  std::atomic<bool> stop_flusher_{false};
  // The flusher parks on flusher_cv_ between sync_steps; the destructor
  // notifies it so shutdown costs one wakeup, not a full interval sleep.
  std::mutex flusher_mu_;
  std::condition_variable flusher_cv_;
};

}  // namespace pax::libpax
