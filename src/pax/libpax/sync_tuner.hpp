// Adaptive sync tuning: pick the host sync path's knobs per epoch instead
// of freezing them at map_pool() time.
//
// The batched diff has two knobs — `sync_batch_lines` (how many LineUpdates
// ride one PaxDevice::sync_lines call) and `diff_workers` (parallelism of
// the dirty-page diff) — whose best values depend on the workload the
// options struct cannot know in advance: how many pages an epoch dirties,
// how dense the dirty lines are within those pages, and how hard the
// device's stripe mutexes are being fought over. The tuner observes exactly
// those three signals (dirty-set size from VpmRegion, lines-per-page
// density from the runtime's SyncStats window, stripe contention from
// PaxDevice::stripe_stats) and derives both knobs each epoch:
//
//   * batch size grows with the expected dirty-line volume — bigger epochs
//     amortize the per-batch stripe-group and log-mutex work across more
//     lines; tiny epochs keep batches small so lines aren't held back.
//   * worker count grows with the dirty-set size (fan-out only pays for
//     itself when there are pages to shard) and shrinks when the device
//     reports stripe contention — extra diff threads that serialize on
//     stripe mutexes burn CPU without moving lines.
//
// With the default config, decide() behaves as a pure function of its
// observation: deterministic, trivially unit-testable (monotonicity in each
// signal is part of the contract). Two opt-in feedback mechanisms damp
// workloads whose signals alternate epoch to epoch (a dense epoch followed
// by a sparse one would otherwise flap the batch size between its extremes
// every persist): `ewma_alpha` low-pass-filters the density and contention
// signals across calls, and `hysteresis` keeps the previous decision until
// the newly derived knob moves outside a relative band around it. Static
// knobs remain overrides: a pinned value is returned verbatim and only the
// unpinned knob adapts.
#pragma once

#include <cstddef>

namespace pax::libpax {

struct SyncTunerConfig {
  /// Bounds for the adapted batch size (both inclusive; powers of two keep
  /// the sweep space comparable across runs).
  std::size_t min_batch_lines = 64;
  std::size_t max_batch_lines = 2048;
  /// Upper bound for the adapted worker count (callers cap this further by
  /// the thread pool they actually built).
  unsigned max_workers = 8;
  /// Pins: nonzero freezes that knob at the given value (the static
  /// RuntimeOptions override); the tuner adapts only the other one.
  std::size_t pinned_batch_lines = 0;
  unsigned pinned_workers = 0;
  /// Contention ratio (contended acquisitions / acquisitions) above which
  /// the worker count starts shedding threads.
  double contention_low = 0.02;
  /// Ratio at (and beyond) which the fan-out collapses to a single worker.
  double contention_high = 0.5;
  /// EWMA smoothing factor for the density and contention signals:
  /// smoothed = alpha * observed + (1 - alpha) * previous. 1.0 (default)
  /// disables smoothing — every decision sees the raw sample. Lower values
  /// damp one-epoch spikes so alternating dense/sparse epochs converge on a
  /// stable knob instead of oscillating. dirty_pages is never smoothed: it
  /// is exact for the epoch being synced, not a trailing estimate.
  double ewma_alpha = 1.0;
  /// Relative hysteresis band around the previous decision: an unpinned
  /// knob only moves when the newly derived value differs from the last
  /// returned one by MORE than hysteresis * last (0 = disabled, 0.5 = the
  /// knob must change by over ±50% to move). Suppresses flapping across a
  /// power-of-two boundary that smoothing alone cannot remove.
  double hysteresis = 0.0;
};

/// One epoch's observed signals. lines_per_page and stripe_contention are
/// windowed rates from the previous epoch(s); dirty_pages is the current
/// epoch's dirty-set size (known exactly before the diff starts).
struct SyncObservation {
  std::size_t dirty_pages = 0;
  double lines_per_page = 0.0;    // dirty lines found per page scanned
  double stripe_contention = 0.0; // contended / total stripe-mutex acquires
};

struct SyncDecision {
  std::size_t batch_lines = 0;
  unsigned workers = 0;
};

class SyncTuner {
 public:
  explicit SyncTuner(const SyncTunerConfig& config = {});

  const SyncTunerConfig& config() const { return config_; }

  /// Derives both knobs from `obs`. Guarantees (tested):
  ///   * batch_lines is monotone non-decreasing in dirty_pages and in
  ///     lines_per_page, clamped to [min_batch_lines, max_batch_lines];
  ///   * workers is monotone non-decreasing in dirty_pages and monotone
  ///     non-increasing in stripe_contention, in [1, max_workers];
  ///   * a pinned knob is returned verbatim;
  ///   * with ewma_alpha = 1.0 and hysteresis = 0 (the defaults) the result
  ///     depends only on `obs`, never on earlier calls.
  SyncDecision decide(const SyncObservation& obs);

 private:
  SyncTunerConfig config_;

  // Feedback state, inert under the default config.
  bool have_state_ = false;
  double ewma_density_ = 0.0;
  double ewma_contention_ = 0.0;
  SyncDecision last_{};
};

}  // namespace pax::libpax
