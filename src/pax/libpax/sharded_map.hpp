// ShardedMap — a thread-safe persistent hash map built from unmodified
// standard containers.
//
// The paper's concurrency contract (§3.5) puts two obligations on the
// application: the structure itself must be thread safe, and persist() must
// only run while no thread is mutating. ShardedMap discharges both by
// construction:
//
//   * data lives in N independent std::unordered_map shards inside vPM
//     (black-box reuse, as everywhere in libpax);
//   * each shard is guarded by a volatile mutex held only for the duration
//     of one operation — mutexes live in the handle, never in vPM (a lock
//     is meaningless across a crash);
//   * persist() takes every shard lock in order, quiescing all writers,
//     then commits the snapshot — so a ShardedMap snapshot can never
//     contain a torn operation.
//
// Keys and values must be trivially copyable or themselves allocator-aware
// with PaxStlAllocator (same rules as any libpax container).
#pragma once

#include <array>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {

template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class ShardedMap {
 public:
  using ShardMap = std::unordered_map<K, V, Hash, Eq,
                                      PaxStlAllocator<std::pair<const K, V>>>;

  /// Opens (or recovers) a sharded map with `shard_count` shards in
  /// `runtime`'s pool. The shard count is fixed at creation and validated
  /// on recovery.
  static Result<ShardedMap> open(PaxRuntime& runtime,
                                 std::size_t shard_count = 16) {
    if (shard_count == 0 || shard_count > kMaxShards) {
      return invalid_argument("shard count must be in [1, 256]");
    }
    auto root = Persistent<Root>::open(runtime, [&](void* mem) {
      new (mem) Root(shard_count, &runtime.heap());
    });
    if (!root.ok()) return root.status();
    if (root.value()->shard_count != shard_count && root.value().recovered()) {
      return failed_precondition(
          "pool was created with a different shard count");
    }
    return ShardedMap(&runtime, std::move(root).value());
  }

  /// Inserts or updates. Thread safe.
  void put(const K& key, const V& value) {
    Shard shard = shard_for(key);
    std::lock_guard lock(*shard.mutex);
    shard.map->insert_or_assign(key, value);
  }

  /// Move-in variant: for allocator-carrying K/V (pool-backed strings),
  /// the caller constructs the values once with the pool allocator and the
  /// map adopts them without a second persistent-heap allocation.
  ///
  /// NOTE: the caller's K/V construction happens before the shard lock, so
  /// any persistent-heap allocation it performs is NOT covered by the
  /// quiescence persist()/persist_async() establish via lock_all() — a
  /// concurrent seal could snapshot mid-allocation. When K or V allocate
  /// from the pool, use emplace() instead.
  void put(K&& key, V&& value) {
    Shard shard = shard_for(key);
    std::lock_guard lock(*shard.mutex);
    shard.map->insert_or_assign(std::move(key), std::move(value));
  }

  /// Insert-or-assign where K and V are built INSIDE the locked region:
  /// `probe` (any type Hash/Eq accept transparently) selects the shard and
  /// the slot; `make_key`/`make_value` run only under the shard lock.
  /// This is the §3.5-safe write path for allocator-aware K/V — their
  /// persistent-heap allocations happen while the shard is quiesced
  /// against lock_all(), so a commit seal can never observe a half-built
  /// allocation. `make_key` is not invoked when the key already exists.
  template <typename KeyLike, typename MakeK, typename MakeV>
  void emplace(const KeyLike& probe, MakeK&& make_key, MakeV&& make_value) {
    Shard shard = shard_for(probe);
    std::lock_guard lock(*shard.mutex);
    auto it = shard.map->find(probe);
    if (it != shard.map->end()) {
      it->second = std::forward<MakeV>(make_value)();
    } else {
      shard.map->emplace(std::forward<MakeK>(make_key)(),
                         std::forward<MakeV>(make_value)());
    }
  }

  /// Thread safe point lookup.
  std::optional<V> get(const K& key) const {
    Shard shard = shard_for(key);
    std::lock_guard lock(*shard.mutex);
    auto it = shard.map->find(key);
    if (it == shard.map->end()) return std::nullopt;
    return it->second;
  }

  /// Removes `key`; returns true if it was present. Thread safe. Accepts
  /// any key-like type when Hash and Eq are transparent (find + iterator
  /// erase — C++20 has no heterogeneous unordered erase).
  template <typename KeyLike = K>
  bool erase(const KeyLike& key) {
    Shard shard = shard_for(key);
    std::lock_guard lock(*shard.mutex);
    auto it = shard.map->find(key);
    if (it == shard.map->end()) return false;
    shard.map->erase(it);
    return true;
  }

  /// Heterogeneous point read without materializing a K: looks `key` up
  /// (any type Hash/Eq accept transparently — e.g. std::string_view probing
  /// pool-allocated string keys) and invokes `fn(const V&)` under the shard
  /// lock. Returns false when absent. The whole point for pool-backed key
  /// types: constructing a temporary K would allocate in (and so dirty)
  /// the persistent heap on a pure read path.
  template <typename KeyLike, typename Fn>
  bool with(const KeyLike& key, Fn&& fn) const {
    Shard shard = shard_for(key);
    std::lock_guard lock(*shard.mutex);
    auto it = shard.map->find(key);
    if (it == shard.map->end()) return false;
    std::forward<Fn>(fn)(it->second);
    return true;
  }

  /// Total entries across shards (takes all locks; O(shards)).
  std::size_t size() const {
    auto locks = lock_all();
    std::size_t total = 0;
    for (const auto& shard : root_->shards) total += shard.size();
    return total;
  }

  /// Visits every entry under full quiescence.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    auto locks = lock_all();
    for (const auto& shard : root_->shards) {
      for (const auto& kv : shard) fn(kv.first, kv.second);
    }
  }

  /// Quiesces all writers (every shard lock) and commits a snapshot: the
  /// §3.5-safe persist.
  Result<Epoch> persist() {
    auto locks = lock_all();
    return runtime_->persist();
  }

  /// Non-blocking variant (§6): seals under quiescence, commits later.
  ///
  /// Quiescence is needed only for the swap itself, not for the drain: the
  /// shard locks are held exactly for the duration of this call. Under a
  /// pipelined runtime (RuntimeOptions::pipeline_depth > 0) persist_async
  /// copies the dirty pages into a sealed-epoch snapshot before returning,
  /// so once the locks drop, readers (get) and writers (put) proceed
  /// concurrently with the background drain of that snapshot — the drain
  /// reads only its private copy, never the live shards. Covered by the
  /// TSan job (ConcurrentGetsDuringPipelinedDrain).
  Result<Epoch> persist_async() {
    auto locks = lock_all();
    return runtime_->persist_async();
  }

  std::size_t shard_count() const { return root_->shard_count; }
  bool recovered() const { return recovered_; }

 private:
  static constexpr std::size_t kMaxShards = 256;

  using ShardVec = std::vector<ShardMap, PaxStlAllocator<ShardMap>>;

  // Persistent root: shard maps + the fixed shard count. The vector itself
  // (header, element array, every bucket and node) lives fully in vPM.
  struct Root {
    std::size_t shard_count;
    ShardVec shards;

    Root(std::size_t n, PaxHeap* heap)
        : shard_count(n),
          shards(n, ShardMap(typename ShardMap::allocator_type(heap)),
                 PaxStlAllocator<ShardMap>(heap)) {}
  };

  struct Shard {
    ShardMap* map;
    std::mutex* mutex;
  };

  ShardedMap(PaxRuntime* runtime, Persistent<Root> root)
      : runtime_(runtime),
        root_handle_(std::move(root)),
        root_(root_handle_.get()),
        recovered_(root_handle_.recovered()),
        mutexes_(std::make_unique<std::mutex[]>(root_->shard_count)) {}

  template <typename KeyLike>
  Shard shard_for(const KeyLike& key) const {
    const std::size_t idx = Hash{}(key) % root_->shard_count;
    return {&root_->shards[idx], &mutexes_[idx]};
  }

  std::vector<std::unique_lock<std::mutex>> lock_all() const {
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(root_->shard_count);
    for (std::size_t i = 0; i < root_->shard_count; ++i) {
      locks.emplace_back(mutexes_[i]);
    }
    return locks;
  }

  PaxRuntime* runtime_;
  Persistent<Root> root_handle_;
  Root* root_;
  bool recovered_;
  // Volatile, per-handle: rebuilt on every open; never part of the snapshot.
  std::unique_ptr<std::mutex[]> mutexes_;
};

}  // namespace pax::libpax
