// Region-resident persistent heap.
//
// All allocator metadata (bump pointer, free lists, root offset) lives
// *inside* the vPM region, so it is snapshotted and rolled back together
// with the data structures it manages — an interrupted epoch can never leak
// or double-allocate across a crash, because recovery rewinds the heap and
// the structure to the same instant.
//
// Design: size-class segregated free lists. Every block is preceded by a
// 16-byte header recording its class; freed blocks are pushed onto their
// class's intrusive list (the "next" offset is stored in the block body).
// Classes are powers of two from 16 B to 1 MiB; larger allocations are
// bump-only (freed ones are dropped — document on the API).
//
// Offsets, never pointers, are stored in region metadata, so the heap is
// position-independent even if the fixed mapping hint ever fails.
#pragma once

#include <cstdint>
#include <mutex>

#include "pax/common/status.hpp"
#include "pax/common/types.hpp"

namespace pax::libpax {

inline constexpr std::uint64_t kHeapMagic = 0x50414548'58415031ULL;
inline constexpr std::size_t kMinClassSize = 16;
inline constexpr std::size_t kMaxClassSize = 1 << 20;
inline constexpr std::size_t kNumClasses = 17;  // 16 B ... 1 MiB, powers of 2

struct HeapStats {
  std::uint64_t allocations = 0;
  std::uint64_t frees = 0;
  std::uint64_t freelist_hits = 0;
  std::uint64_t bytes_requested = 0;
  std::uint64_t bytes_reserved = 0;  // after class rounding + headers
  std::uint64_t large_frees_dropped = 0;
};

/// The persistent heap over a caller-provided memory window (the vPM
/// region's bytes). Thread-safe.
class PaxHeap {
 public:
  /// Attaches to `base[0, size)`. If the window does not hold a valid heap
  /// (fresh pool), formats one.
  PaxHeap(std::byte* base, std::size_t size);

  /// True if the constructor found an existing heap rather than formatting.
  bool recovered() const { return recovered_; }

  /// Allocates `n` bytes aligned to at least 16 (or `align` if larger;
  /// `align` must be a power of two ≤ 4096). Returns nullptr when the
  /// region is exhausted.
  void* allocate(std::size_t n, std::size_t align = 16);

  /// Returns a block to its size-class free list. `p` must come from
  /// allocate(). Blocks larger than the largest class are dropped (their
  /// space is reclaimed only by reformatting).
  void deallocate(void* p);

  /// The persistent root offset (0 = unset). Applications park the offset
  /// of their top-level object here; it rolls back with everything else.
  std::uint64_t root_offset() const;
  void set_root_offset(std::uint64_t off);

  void* offset_to_ptr(std::uint64_t off) const {
    return off == 0 ? nullptr : base_ + off;
  }
  std::uint64_t ptr_to_offset(const void* p) const;

  std::byte* base() const { return base_; }
  std::size_t bytes_used() const;
  std::size_t capacity() const { return size_; }
  HeapStats stats() const;

 private:
  struct Header;  // persistent, defined in heap.cpp

  Header* header() const;
  void format();

  std::byte* base_;
  std::size_t size_;
  bool recovered_ = false;
  mutable std::mutex mu_;
  HeapStats stats_;
};

/// Process-global registry mapping region base addresses to live heaps.
/// PaxRuntime registers its heap on open and unregisters on close; the
/// restart-safe PaxStlAllocator resolves heaps through it (see
/// stl_allocator.hpp for why).
void register_heap(std::byte* base, PaxHeap* heap);
void unregister_heap(std::byte* base);
PaxHeap* find_registered_heap(std::byte* base);

}  // namespace pax::libpax
