#include "pax/libpax/heap.hpp"

#include <bit>
#include <cstring>
#include <unordered_map>

#include "pax/common/check.hpp"

namespace pax::libpax {
namespace {

// Per-block prefix. 16 bytes keeps payloads 16-aligned.
struct BlockHeader {
  std::uint32_t class_index;  // kNumClasses = bump-only large block
  std::uint32_t align_pad;    // bytes between the header's natural slot and
                              // the start of the padded block (for frees of
                              // over-aligned allocations)
  std::uint64_t payload_size;
};
static_assert(sizeof(BlockHeader) == 16);

constexpr std::size_t class_size(std::size_t idx) {
  return kMinClassSize << idx;
}

// Smallest class whose size ≥ n, or kNumClasses if n > kMaxClassSize.
std::size_t class_for(std::size_t n) {
  if (n <= kMinClassSize) return 0;
  if (n > kMaxClassSize) return kNumClasses;
  return static_cast<std::size_t>(
      std::bit_width(n - 1) - std::bit_width(kMinClassSize) + 1);
}

constexpr std::uint64_t align_up(std::uint64_t v, std::uint64_t a) {
  return (v + a - 1) & ~(a - 1);
}

}  // namespace

// Persistent heap superblock at region offset 0. Mutations to this struct
// are ordinary stores into the vPM region and therefore crash-rolled-back
// with everything else.
struct PaxHeap::Header {
  std::uint64_t magic;
  std::uint64_t bump;                        // next unused region offset
  std::uint64_t root;                        // application root offset
  std::uint64_t free_heads[kNumClasses];     // offsets of free-list heads
};

PaxHeap::Header* PaxHeap::header() const {
  return reinterpret_cast<Header*>(base_);
}

PaxHeap::PaxHeap(std::byte* base, std::size_t size)
    : base_(base), size_(size) {
  PAX_CHECK(base != nullptr);
  PAX_CHECK_MSG(reinterpret_cast<std::uintptr_t>(base) % kPageSize == 0,
                "heap base must be page-aligned (offset alignment == pointer "
                "alignment)");
  PAX_CHECK(size >= kPageSize);
  if (header()->magic == kHeapMagic && header()->bump >= sizeof(Header) &&
      header()->bump <= size) {
    recovered_ = true;
  } else {
    format();
  }
}

void PaxHeap::format() {
  Header* h = header();
  std::memset(h, 0, sizeof(Header));
  h->bump = align_up(sizeof(Header), 64);
  h->root = 0;
  h->magic = kHeapMagic;
}

void* PaxHeap::allocate(std::size_t n, std::size_t align) {
  PAX_CHECK_MSG(std::has_single_bit(align) && align <= 4096,
                "alignment must be a power of two <= 4096");
  if (n == 0) n = 1;
  std::lock_guard lock(mu_);
  Header* h = header();

  const std::size_t cls = class_for(n);
  ++stats_.allocations;
  stats_.bytes_requested += n;

  // Free-list hit (classes only; alignment beyond 16 falls through to bump
  // because recycled blocks are only 16-aligned).
  if (cls < kNumClasses && align <= 16 && h->free_heads[cls] != 0) {
    const std::uint64_t block_off = h->free_heads[cls];
    std::uint64_t next;
    std::memcpy(&next, base_ + block_off, sizeof(next));
    h->free_heads[cls] = next;
    ++stats_.freelist_hits;
    auto* bh = reinterpret_cast<BlockHeader*>(base_ + block_off -
                                              sizeof(BlockHeader));
    PAX_CHECK(bh->class_index == cls);
    bh->payload_size = n;
    return base_ + block_off;
  }

  // Bump allocation: [pad][BlockHeader][payload(aligned)].
  const std::size_t reserve =
      cls < kNumClasses ? class_size(cls) : align_up(n, 16);
  std::uint64_t header_at = align_up(h->bump, 16);
  std::uint64_t payload_at =
      align_up(header_at + sizeof(BlockHeader), align);
  header_at = payload_at - sizeof(BlockHeader);

  if (payload_at + reserve > size_) return nullptr;  // region exhausted

  auto* bh = reinterpret_cast<BlockHeader*>(base_ + header_at);
  bh->class_index = static_cast<std::uint32_t>(cls);
  bh->align_pad = static_cast<std::uint32_t>(header_at - h->bump);
  bh->payload_size = n;
  h->bump = payload_at + reserve;
  stats_.bytes_reserved += reserve + sizeof(BlockHeader);
  return base_ + payload_at;
}

void PaxHeap::deallocate(void* p) {
  if (p == nullptr) return;
  std::lock_guard lock(mu_);
  Header* h = header();

  auto* bytes = static_cast<std::byte*>(p);
  PAX_CHECK_MSG(bytes > base_ + sizeof(BlockHeader) && bytes < base_ + size_,
                "free of pointer outside the heap");
  auto* bh = reinterpret_cast<BlockHeader*>(bytes - sizeof(BlockHeader));
  const std::size_t cls = bh->class_index;
  ++stats_.frees;

  if (cls >= kNumClasses) {
    ++stats_.large_frees_dropped;  // bump-only block: space not recycled
    return;
  }
  PAX_CHECK_MSG(class_size(cls) >= bh->payload_size,
                "heap block header corrupted");
  const std::uint64_t block_off =
      static_cast<std::uint64_t>(bytes - base_);
  std::uint64_t next = h->free_heads[cls];
  std::memcpy(base_ + block_off, &next, sizeof(next));
  h->free_heads[cls] = block_off;
}

std::uint64_t PaxHeap::root_offset() const {
  std::lock_guard lock(mu_);
  return header()->root;
}

void PaxHeap::set_root_offset(std::uint64_t off) {
  std::lock_guard lock(mu_);
  PAX_CHECK(off < size_);
  header()->root = off;
}

std::uint64_t PaxHeap::ptr_to_offset(const void* p) const {
  if (p == nullptr) return 0;
  auto* bytes = static_cast<const std::byte*>(p);
  PAX_CHECK(bytes >= base_ && bytes < base_ + size_);
  return static_cast<std::uint64_t>(bytes - base_);
}

std::size_t PaxHeap::bytes_used() const {
  std::lock_guard lock(mu_);
  return header()->bump;
}

HeapStats PaxHeap::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

namespace {
std::mutex g_heap_registry_mu;
std::unordered_map<std::byte*, PaxHeap*>& heap_registry() {
  static std::unordered_map<std::byte*, PaxHeap*> registry;
  return registry;
}
}  // namespace

void register_heap(std::byte* base, PaxHeap* heap) {
  std::lock_guard lock(g_heap_registry_mu);
  heap_registry()[base] = heap;
}

void unregister_heap(std::byte* base) {
  std::lock_guard lock(g_heap_registry_mu);
  heap_registry().erase(base);
}

PaxHeap* find_registered_heap(std::byte* base) {
  std::lock_guard lock(g_heap_registry_mu);
  auto it = heap_registry().find(base);
  return it == heap_registry().end() ? nullptr : it->second;
}

}  // namespace pax::libpax
