// ObjectStore — a named-blob store on libpax: the paper's motivating
// application shape ("applications can interact with vast amounts of data
// in granular patterns while avoiding costly kernel boundary crossings,
// data movement, and serialization/deserialization overheads", §1) as a
// reusable library.
//
// Objects are arbitrary byte blobs keyed by string names. Everything —
// the name index (a std::map), the names, the blob bytes — lives in vPM
// through the standard allocator, so the store inherits libpax's whole
// contract: snapshot atomicity across any set of puts/removes, black-box
// recovery, and zero serialization (a get() hands back a pointer into
// persistent memory).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pax/libpax/persistent.hpp"

namespace pax::libpax {

class ObjectStore {
 public:
  using PString =
      std::basic_string<char, std::char_traits<char>, PaxStlAllocator<char>>;
  using Blob = std::vector<std::byte, PaxStlAllocator<std::byte>>;

  /// Opens (or recovers) the store rooted in `runtime`'s pool.
  static Result<ObjectStore> open(PaxRuntime& runtime) {
    auto root = Persistent<Index>::open(runtime);
    if (!root.ok()) return root.status();
    return ObjectStore(&runtime, std::move(root).value());
  }

  /// Inserts or replaces the object `name`.
  void put(std::string_view name, std::span<const std::byte> bytes) {
    Blob blob(bytes.begin(), bytes.end(),
              PaxStlAllocator<std::byte>(&runtime_->heap()));
    index_->insert_or_assign(make_name(name), std::move(blob));
  }

  /// Zero-copy read: a view directly into persistent memory, valid until
  /// the object is overwritten or removed.
  std::optional<std::span<const std::byte>> get(std::string_view name) const {
    auto it = index_->find(make_name(name));
    if (it == index_->end()) return std::nullopt;
    return std::span<const std::byte>(it->second.data(), it->second.size());
  }

  bool remove(std::string_view name) {
    return index_->erase(make_name(name)) > 0;
  }

  bool contains(std::string_view name) const {
    return index_->find(make_name(name)) != index_->end();
  }

  std::size_t size() const { return index_->size(); }

  /// Names in lexicographic order, optionally restricted to a prefix.
  std::vector<std::string> list(std::string_view prefix = {}) const {
    std::vector<std::string> names;
    for (auto it = index_->lower_bound(make_name(prefix));
         it != index_->end(); ++it) {
      const std::string_view name(it->first.data(), it->first.size());
      if (name.substr(0, prefix.size()) != prefix) break;
      names.emplace_back(name);
    }
    return names;
  }

  /// Commits everything since the last snapshot (all puts/removes atomic).
  Result<Epoch> commit() { return runtime_->persist(); }

  bool recovered() const { return root_.recovered(); }

 private:
  using Index = std::map<PString, Blob, std::less<PString>,
                         PaxStlAllocator<std::pair<const PString, Blob>>>;

  ObjectStore(PaxRuntime* runtime, Persistent<Index> root)
      : runtime_(runtime), root_(std::move(root)), index_(root_.get()) {}

  PString make_name(std::string_view s) const {
    return PString(s.begin(), s.end(),
                   PaxStlAllocator<char>(&runtime_->heap()));
  }

  PaxRuntime* runtime_;
  Persistent<Index> root_;
  Index* index_;
};

}  // namespace pax::libpax
