#include "pax/libpax/sync_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "pax/common/check.hpp"

namespace pax::libpax {
namespace {

std::size_t ceil_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SyncTuner::SyncTuner(const SyncTunerConfig& config) : config_(config) {
  PAX_CHECK_MSG(config_.min_batch_lines >= 1 &&
                    config_.min_batch_lines <= config_.max_batch_lines,
                "SyncTuner batch bounds inverted");
  PAX_CHECK_MSG(config_.max_workers >= 1, "SyncTuner needs >= 1 worker");
  PAX_CHECK_MSG(config_.contention_low <= config_.contention_high,
                "SyncTuner contention thresholds inverted");
}

SyncDecision SyncTuner::decide(const SyncObservation& obs) const {
  SyncDecision d;

  // Expected dirty-line volume this epoch: the dirty-set size is exact; the
  // density is last epoch's measurement (>= 1 line per dirty page by
  // construction — a page cannot be dirty without a store).
  const double density = std::max(1.0, obs.lines_per_page);
  const double expected_lines =
      static_cast<double>(obs.dirty_pages) * density;

  // Batch size: one batch per worker per ~16 flushes keeps the log-mutex
  // amortization high without letting a single batch hold a stripe group's
  // worth of lines hostage for too long. Rounded to a power of two so
  // sweeps and logs stay comparable.
  if (config_.pinned_batch_lines != 0) {
    d.batch_lines = config_.pinned_batch_lines;
  } else {
    const std::size_t target =
        static_cast<std::size_t>(expected_lines / 16.0);
    d.batch_lines = std::clamp(ceil_pow2(std::max<std::size_t>(1, target)),
                               config_.min_batch_lines,
                               config_.max_batch_lines);
  }

  // Workers: one per 32 dirty pages (below that, thread hand-off costs more
  // than the diff), then shed threads linearly as stripe contention climbs
  // from the low to the high threshold.
  if (config_.pinned_workers != 0) {
    d.workers = config_.pinned_workers;
  } else {
    const std::size_t by_pages = obs.dirty_pages / 32;
    unsigned w = static_cast<unsigned>(std::clamp<std::size_t>(
        by_pages, 1, config_.max_workers));
    const double c = std::clamp(obs.stripe_contention, 0.0, 1.0);
    if (c > config_.contention_low) {
      const double span =
          std::max(1e-9, config_.contention_high - config_.contention_low);
      const double keep =
          std::clamp(1.0 - (c - config_.contention_low) / span, 0.0, 1.0);
      w = std::max(1u, static_cast<unsigned>(
                           std::floor(static_cast<double>(w) * keep)));
    }
    d.workers = w;
  }
  return d;
}

}  // namespace pax::libpax
