#include "pax/libpax/sync_tuner.hpp"

#include <algorithm>
#include <cmath>

#include "pax/common/check.hpp"

namespace pax::libpax {
namespace {

std::size_t ceil_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

SyncTuner::SyncTuner(const SyncTunerConfig& config) : config_(config) {
  PAX_CHECK_MSG(config_.min_batch_lines >= 1 &&
                    config_.min_batch_lines <= config_.max_batch_lines,
                "SyncTuner batch bounds inverted");
  PAX_CHECK_MSG(config_.max_workers >= 1, "SyncTuner needs >= 1 worker");
  PAX_CHECK_MSG(config_.contention_low <= config_.contention_high,
                "SyncTuner contention thresholds inverted");
  PAX_CHECK_MSG(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
                "SyncTuner ewma_alpha must be in (0, 1]");
  PAX_CHECK_MSG(config_.hysteresis >= 0.0,
                "SyncTuner hysteresis must be >= 0");
}

SyncDecision SyncTuner::decide(const SyncObservation& obs) {
  SyncDecision d;

  // Expected dirty-line volume this epoch: the dirty-set size is exact; the
  // density is last epoch's measurement (>= 1 line per dirty page by
  // construction — a page cannot be dirty without a store). Density and
  // contention are trailing rates, so they are the signals worth smoothing;
  // dirty_pages is exact for THIS epoch and passes through unfiltered.
  const double raw_density = std::max(1.0, obs.lines_per_page);
  const double raw_contention = std::clamp(obs.stripe_contention, 0.0, 1.0);
  if (!have_state_) {
    ewma_density_ = raw_density;
    ewma_contention_ = raw_contention;
  } else {
    ewma_density_ = config_.ewma_alpha * raw_density +
                    (1.0 - config_.ewma_alpha) * ewma_density_;
    ewma_contention_ = config_.ewma_alpha * raw_contention +
                       (1.0 - config_.ewma_alpha) * ewma_contention_;
  }
  const double density = ewma_density_;
  const double expected_lines =
      static_cast<double>(obs.dirty_pages) * density;

  // Batch size: one batch per worker per ~16 flushes keeps the log-mutex
  // amortization high without letting a single batch hold a stripe group's
  // worth of lines hostage for too long. Rounded to a power of two so
  // sweeps and logs stay comparable.
  if (config_.pinned_batch_lines != 0) {
    d.batch_lines = config_.pinned_batch_lines;
  } else {
    const std::size_t target =
        static_cast<std::size_t>(expected_lines / 16.0);
    d.batch_lines = std::clamp(ceil_pow2(std::max<std::size_t>(1, target)),
                               config_.min_batch_lines,
                               config_.max_batch_lines);
  }

  // Workers: one per 32 dirty pages (below that, thread hand-off costs more
  // than the diff), then shed threads linearly as stripe contention climbs
  // from the low to the high threshold.
  if (config_.pinned_workers != 0) {
    d.workers = config_.pinned_workers;
  } else {
    const std::size_t by_pages = obs.dirty_pages / 32;
    unsigned w = static_cast<unsigned>(std::clamp<std::size_t>(
        by_pages, 1, config_.max_workers));
    const double c = ewma_contention_;
    if (c > config_.contention_low) {
      const double span =
          std::max(1e-9, config_.contention_high - config_.contention_low);
      const double keep =
          std::clamp(1.0 - (c - config_.contention_low) / span, 0.0, 1.0);
      w = std::max(1u, static_cast<unsigned>(
                           std::floor(static_cast<double>(w) * keep)));
    }
    d.workers = w;
  }

  // Hysteresis: hold the previous decision unless the fresh derivation
  // escapes the relative band around it. Applied per unpinned knob (a pin
  // already freezes its knob outright).
  if (have_state_ && config_.hysteresis > 0.0) {
    if (config_.pinned_batch_lines == 0 && last_.batch_lines != 0) {
      const double delta = std::fabs(static_cast<double>(d.batch_lines) -
                                     static_cast<double>(last_.batch_lines));
      if (delta <= config_.hysteresis *
                       static_cast<double>(last_.batch_lines)) {
        d.batch_lines = last_.batch_lines;
      }
    }
    if (config_.pinned_workers == 0 && last_.workers != 0) {
      const double delta = std::fabs(static_cast<double>(d.workers) -
                                     static_cast<double>(last_.workers));
      if (delta <= config_.hysteresis * static_cast<double>(last_.workers)) {
        d.workers = last_.workers;
      }
    }
  }
  have_state_ = true;
  last_ = d;
  return d;
}

}  // namespace pax::libpax
