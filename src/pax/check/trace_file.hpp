// .paxevt — versioned on-disk container for a PaxCheck event stream.
//
// A failing crash exploration (crashpoint.hpp) should leave behind
// something a developer can re-run the rule engines over without
// reconstructing the workload; this format is that artifact. The captured
// stream is everything the attached Checker processed (stores, flushes,
// drains, log/device/sync events, locks) — it deliberately does NOT carry
// data bytes, so a trace replays verdicts, not media contents.
//
// Layout (little-endian, fixed offsets):
//
//   [ 0..8)   magic "PAXEVT1\n"
//   [ 8..12)  format version (kTraceVersion)
//   [12..16)  reserved, zero
//   [16..24)  event count
//   [24..28)  CRC32C of the event payload
//   [28..32)  CRC32C of header bytes [0, 28)
//   [32.. )   events, 40 bytes each: seq, line, a, b (u64), type (u8),
//             flags (u8), tid (u16), zero padding (u32)
//
// decode_trace rejects — with a Status, never UB — truncated buffers
// (size inconsistent with the count), bit flips (either CRC), unknown
// versions, and out-of-range event-type bytes. Bumping the format requires
// bumping kTraceVersion; old readers then refuse new files explicitly
// instead of misparsing them.
//
// Version history (records stay 40 bytes; the magic names the container,
// the version field the vocabulary):
//   v1 — event types through kPipelinePage.
//   v2 — adds the fork-join types (kTaskDispatch..kTaskJoin) and the
//        kFlagGateObserved flag on kWriteback. v1 files decode
//        byte-for-byte identically; the writer always emits v2.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pax/check/event.hpp"
#include "pax/common/status.hpp"

namespace pax::check {

inline constexpr std::uint64_t kTraceMagic = 0x0a31545645584150ULL;  // "PAXEVT1\n"
inline constexpr std::uint32_t kTraceVersion = 2;
inline constexpr std::size_t kTraceHeaderSize = 32;
inline constexpr std::size_t kTraceRecordSize = 40;

/// A decoded trace plus the format version it was written with. Analyses
/// that depend on v2-only records (gate flags, fork-join brackets) use the
/// version to fall back to the lenient v1 interpretation on old artifacts.
struct Trace {
  std::uint32_t version = kTraceVersion;
  std::vector<Event> events;
};

/// Serializes an event stream into a .paxevt byte buffer (current version).
std::vector<std::byte> encode_trace(std::span<const Event> events);

/// Validates and decodes a .paxevt byte buffer back into events. Accepts
/// every version up to kTraceVersion, enforcing that version's event-type
/// range.
Result<std::vector<Event>> decode_trace(std::span<const std::byte> bytes);

/// decode_trace, but also reports the file's format version.
Result<Trace> decode_trace_versioned(std::span<const std::byte> bytes);

/// encode_trace + atomic-enough file write (whole buffer, one open).
Status write_trace(const std::string& path, std::span<const Event> events);

/// Reads and decode_trace's a .paxevt file.
Result<std::vector<Event>> read_trace(const std::string& path);

/// Reads a .paxevt file, keeping the version alongside the events.
Result<Trace> read_trace_versioned(const std::string& path);

}  // namespace pax::check
