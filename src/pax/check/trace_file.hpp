// .paxevt — versioned on-disk container for a PaxCheck event stream.
//
// A failing crash exploration (crashpoint.hpp) should leave behind
// something a developer can re-run the rule engines over without
// reconstructing the workload; this format is that artifact. The captured
// stream is everything the attached Checker processed (stores, flushes,
// drains, log/device/sync events, locks) — it deliberately does NOT carry
// data bytes, so a trace replays verdicts, not media contents.
//
// Layout (little-endian, fixed offsets):
//
//   [ 0..8)   magic "PAXEVT1\n"
//   [ 8..12)  format version (kTraceVersion)
//   [12..16)  reserved, zero
//   [16..24)  event count
//   [24..28)  CRC32C of the event payload
//   [28..32)  CRC32C of header bytes [0, 28)
//   [32.. )   events, 40 bytes each: seq, line, a, b (u64), type (u8),
//             flags (u8), tid (u16), zero padding (u32)
//
// decode_trace rejects — with a Status, never UB — truncated buffers
// (size inconsistent with the count), bit flips (either CRC), unknown
// versions, and out-of-range event-type bytes. Bumping the format requires
// bumping kTraceVersion; old readers then refuse new files explicitly
// instead of misparsing them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pax/check/event.hpp"
#include "pax/common/status.hpp"

namespace pax::check {

inline constexpr std::uint64_t kTraceMagic = 0x0a31545645584150ULL;  // "PAXEVT1\n"
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::size_t kTraceHeaderSize = 32;
inline constexpr std::size_t kTraceRecordSize = 40;

/// Serializes an event stream into a .paxevt byte buffer.
std::vector<std::byte> encode_trace(std::span<const Event> events);

/// Validates and decodes a .paxevt byte buffer back into events.
Result<std::vector<Event>> decode_trace(std::span<const std::byte> bytes);

/// encode_trace + atomic-enough file write (whole buffer, one open).
Status write_trace(const std::string& path, std::span<const Event> events);

/// Reads and decode_trace's a .paxevt file.
Result<std::vector<Event>> read_trace(const std::string& path);

}  // namespace pax::check
