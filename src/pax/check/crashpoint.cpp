#include "pax/check/crashpoint.hpp"

#include <algorithm>
#include <utility>

#include "pax/check/trace_file.hpp"
#include "pax/device/recovery.hpp"

namespace pax::check {

// --- CrashOracle ---------------------------------------------------------

Status CrashOracle::note_commit(Epoch epoch) {
  if (!collect_) return Status::ok();
  auto pool = pmem::PmemPool::open(device_);
  if (!pool.ok()) return pool.status();
  if (!snapshots_.empty() && epoch <= snapshots_.back().epoch) {
    return invalid_argument(
        "oracle epochs must be strictly increasing (got " +
        std::to_string(epoch) + " after " +
        std::to_string(snapshots_.back().epoch) + ")");
  }
  Snapshot snap;
  snap.epoch = epoch;
  snap.events_at = device_->crash_events();
  snap.data.resize(pool.value().data_size());
  device_->read_durable(pool.value().data_offset(), snap.data);
  snapshots_.push_back(std::move(snap));
  return Status::ok();
}

std::uint64_t CrashOracle::baseline_events() const {
  return snapshots_.empty() ? 0 : snapshots_.front().events_at;
}

Status CrashOracle::check_recovered(pmem::PmemPool& pool,
                                    std::uint64_t crash_after) const {
  if (snapshots_.empty()) {
    return failed_precondition("oracle holds no snapshots");
  }
  const Epoch recovered = pool.committed_epoch();

  // The newest snapshot whose commit precedes (or is) the crash point is
  // the "pre" epoch. The only other legal outcome is the next committed
  // epoch: the crash landed inside its persist, after the epoch cell
  // became durable but before the reference run's note_commit observed it.
  std::size_t pre = 0;
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    if (snapshots_[i].events_at <= crash_after) pre = i;
  }
  const Snapshot* expected = nullptr;
  if (recovered == snapshots_[pre].epoch) {
    expected = &snapshots_[pre];
  } else if (pre + 1 < snapshots_.size() &&
             recovered == snapshots_[pre + 1].epoch) {
    expected = &snapshots_[pre + 1];
  }
  if (expected == nullptr) {
    return corruption(
        "recovered epoch " + std::to_string(recovered) +
        " is neither pre-epoch " + std::to_string(snapshots_[pre].epoch) +
        " nor post-epoch" +
        (pre + 1 < snapshots_.size()
             ? " " + std::to_string(snapshots_[pre + 1].epoch)
             : std::string(" (none exists)")));
  }

  std::vector<std::byte> durable(expected->data.size());
  pool.device()->read_durable(pool.data_offset(), durable);
  if (durable != expected->data) {
    const auto mismatch = std::mismatch(durable.begin(), durable.end(),
                                        expected->data.begin());
    const std::size_t off =
        static_cast<std::size_t>(mismatch.first - durable.begin());
    return corruption("recovered data extent diverges from epoch " +
                      std::to_string(expected->epoch) +
                      " snapshot at data line " +
                      std::to_string(off / kCacheLineSize) + " (byte " +
                      std::to_string(off) + ")");
  }
  return Status::ok();
}

// --- Options / results ---------------------------------------------------

std::vector<CrashMode> CrashExplorerOptions::default_modes(
    std::uint64_t seed) {
  return {
      {"drop_all", pmem::CrashConfig::drop_all()},
      {"random", pmem::CrashConfig::random(0.5, seed)},
      {"torn", pmem::CrashConfig::torn(0.5, seed)},
  };
}

std::string CrashFinding::to_string() const {
  std::string out = "crash after event " + std::to_string(crash_after) +
                    " [" + mode + "]: " + detail;
  if (!artifact.empty()) out += "\n    artifact: " + artifact;
  return out;
}

std::uint64_t ExplorationResult::first_bad() const {
  std::uint64_t best = kNoCrashPoint;
  for (const CrashFinding& f : findings) {
    best = std::min(best, f.crash_after);
  }
  return best;
}

std::string ExplorationResult::to_string() const {
  std::string out =
      "crash exploration: " + std::to_string(crash_points) +
      " crash point(s) of " + std::to_string(total_events) +
      " event(s), " + std::to_string(epochs) + " epoch snapshot(s), " +
      std::to_string(executions) + " execution(s), " +
      std::to_string(recoveries) + " audited recovery/ies";
  if (findings.empty()) {
    out += "\n  clean: every recovery matched a committed snapshot";
  } else {
    out += "\n  " + std::to_string(findings.size()) +
           " finding(s), first bad crash index " +
           std::to_string(first_bad());
    for (const CrashFinding& f : findings) {
      out += "\n  " + f.to_string();
    }
  }
  return out;
}

// --- Determinism drift diagnostics ---------------------------------------

namespace {

// A re-execution disagreed with the reference on the crash-countable event
// count. Diff the two countable subsequences and name the first diverging
// event, so the failure localizes the nondeterminism instead of reporting
// bare counts.
std::string describe_event_drift(std::span<const Event> reference,
                                 std::span<const Event> redo,
                                 std::uint64_t expected,
                                 std::uint64_t observed) {
  const auto countable = [](std::span<const Event> events) {
    std::vector<Event> kept;
    for (const Event& e : events) {
      if (is_crash_countable(e.type)) kept.push_back(e);
    }
    return kept;
  };
  const auto describe = [](const Event& e) {
    std::string out = event_type_name(e.type);
    if (e.line != kNoLine) out += " line " + std::to_string(e.line);
    return out;
  };

  std::string out = "workload is not deterministic: reference run counted " +
                    std::to_string(expected) +
                    " crash-countable event(s), re-execution " +
                    std::to_string(observed);
  const std::vector<Event> ref = countable(reference);
  const std::vector<Event> got = countable(redo);
  const std::size_t common = std::min(ref.size(), got.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (ref[i].type == got[i].type && ref[i].line == got[i].line) continue;
    out += "; first divergence at countable event " + std::to_string(i + 1) +
           ": reference " + describe(ref[i]) + " vs re-execution " +
           describe(got[i]);
    return out;
  }
  if (ref.size() != got.size()) {
    const bool ref_longer = ref.size() > got.size();
    const Event& extra = ref_longer ? ref[common] : got[common];
    out += "; streams agree through countable event " +
           std::to_string(common) + ", then the re-execution " +
           (ref_longer ? "ends early (next reference event: " +
                             describe(extra) + ")"
                       : "appends extra " + describe(extra));
  } else {
    out += "; the recorded streams are identical — the drift arose outside "
           "the recorded window";
  }
  return out;
}

}  // namespace

// --- Stream truncation ---------------------------------------------------

std::span<const Event> truncate_at_crash_event(std::span<const Event> events,
                                               std::uint64_t n) {
  std::uint64_t counted = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!is_crash_countable(events[i].type)) continue;
    if (++counted == n) return events.first(i + 1);
  }
  return events;
}

// --- CrashExplorer -------------------------------------------------------

CrashExplorer::CrashExplorer(std::size_t device_bytes, Workload workload,
                             CrashExplorerOptions options)
    : device_bytes_(device_bytes),
      workload_(std::move(workload)),
      options_(std::move(options)) {
  if (options_.modes.empty()) {
    options_.modes = CrashExplorerOptions::default_modes(options_.seed);
  }
  if (options_.every == 0) options_.every = 1;
}

Result<ExplorationResult> CrashExplorer::explore() {
  ExplorationResult result;

  // Reference pass: count events, record the stream, snapshot each epoch.
  auto ref_device = pmem::PmemDevice::create_in_memory(device_bytes_);
  CheckerOptions ref_options = options_.checker;
  ref_options.record_events = true;
  Checker ref_checker(ref_options);
  ref_device->set_checker(&ref_checker);
  CrashOracle oracle(ref_device.get(), /*collect=*/true);
  const Status ref_status = workload_(*ref_device, oracle);
  ref_device->set_checker(nullptr);
  PAX_RETURN_IF_ERROR(ref_status);
  if (oracle.snapshot_count() == 0) {
    return failed_precondition(
        "workload never called CrashOracle::note_commit");
  }
  result.total_events = ref_device->crash_events();
  result.executions = 1;
  result.epochs = oracle.snapshot_count();
  const std::vector<Event> reference = ref_checker.recorded_events();

  // Crash points: a stride-`every` grid over (baseline, total], evenly
  // resampled when max_crash_points bites — sampling must not silently
  // drop the tail, where teardown-adjacent bugs live.
  std::vector<std::uint64_t> points;
  for (std::uint64_t p = oracle.baseline_events() + 1;
       p <= result.total_events; p += options_.every) {
    points.push_back(p);
  }
  if (options_.max_crash_points > 0 &&
      points.size() > options_.max_crash_points) {
    std::vector<std::uint64_t> sampled;
    sampled.reserve(options_.max_crash_points);
    const std::size_t n = points.size();
    const std::size_t m = options_.max_crash_points;
    for (std::size_t i = 0; i < m; ++i) {
      sampled.push_back(points[i * (n - 1) / (m - 1 > 0 ? m - 1 : 1)]);
    }
    sampled.erase(std::unique(sampled.begin(), sampled.end()),
                  sampled.end());
    points = std::move(sampled);
  }

  for (std::uint64_t point : points) {
    PAX_RETURN_IF_ERROR(
        audit_crash_point(point, reference, oracle, result));
    ++result.crash_points;
    if (options_.max_findings > 0 &&
        result.findings.size() >= options_.max_findings) {
      break;
    }
  }
  return result;
}

Status CrashExplorer::audit_crash_point(std::uint64_t point,
                                        std::span<const Event> reference,
                                        const CrashOracle& oracle,
                                        ExplorationResult& result) {
  // Re-execute with a consistent-cut capture armed at `point`. The stream
  // is recorded (rules off — the reference pass already audited a clean
  // run) purely so a determinism drift can name its first diverging event.
  auto device = pmem::PmemDevice::create_in_memory(device_bytes_);
  device->arm_crash_point(point);
  CheckerOptions redo_options;
  redo_options.persist_order = false;
  redo_options.lock_discipline = false;
  redo_options.record_events = true;
  Checker redo(redo_options);
  device->set_checker(&redo);
  CrashOracle scratch(device.get(), /*collect=*/false);
  const Status rerun = workload_(*device, scratch);
  device->set_checker(nullptr);
  PAX_RETURN_IF_ERROR(rerun);
  ++result.executions;
  if (device->crash_events() != result.total_events) {
    return failed_precondition(
        describe_event_drift(reference, redo.recorded_events(),
                             result.total_events, device->crash_events()));
  }
  auto cut = device->take_crash_cut();
  if (!cut.has_value()) {
    return failed_precondition("armed crash cut at event " +
                               std::to_string(point) +
                               " was never captured");
  }
  const std::span<const Event> prefix =
      truncate_at_crash_event(reference, point);

  for (const CrashMode& mode : options_.modes) {
    auto crashed =
        pmem::PmemDevice::create_in_memory_from(cut->resolve(mode.config));

    CheckerOptions audit_options = options_.checker;
    audit_options.record_events = true;  // artifacts want the full stream
    if (!options_.paxcheck_audit) {
      audit_options.persist_order = false;
      audit_options.lock_discipline = false;
    }
    Checker audit(audit_options);
    audit.replay(prefix);
    audit.on_crash();
    crashed->set_checker(&audit);

    std::string failure;
    auto pool = pmem::PmemPool::open(crashed.get());
    if (!pool.ok()) {
      failure = "pool unreadable after crash: " + pool.status().to_string();
    } else {
      auto recovery = device::recover_pool(pool.value());
      ++result.recoveries;
      if (!recovery.ok()) {
        failure = "recovery failed: " + recovery.status().to_string();
      } else {
        Status invariant = oracle.check_recovered(pool.value(), point);
        if (invariant.is_ok() && invariant_) {
          invariant =
              invariant_(pool.value(), pool.value().committed_epoch());
        }
        if (!invariant.is_ok()) failure = invariant.to_string();
      }
    }
    crashed->set_checker(nullptr);

    Report report = audit.report();
    if (failure.empty() && report.clean()) continue;
    if (failure.empty()) {
      failure = "paxcheck: " + report.violations.front().to_string();
    }

    CrashFinding finding;
    finding.crash_after = point;
    finding.mode = mode.name;
    finding.detail = std::move(failure);
    finding.audit = std::move(report);
    if (!options_.artifact_dir.empty()) {
      const std::string path = options_.artifact_dir + "/crash-" +
                               std::to_string(point) + "-" + mode.name +
                               ".paxevt";
      const Status wrote = write_trace(path, audit.recorded_events());
      if (wrote.is_ok()) {
        finding.artifact = path;
      } else {
        finding.detail += " (artifact write failed: " + wrote.to_string() +
                          ")";
      }
    }
    result.findings.push_back(std::move(finding));
  }
  return Status::ok();
}

}  // namespace pax::check
