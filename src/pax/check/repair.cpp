#include "pax/check/repair.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "pax/device/undo_logger.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::check {
namespace {

constexpr std::size_t kScenarioDeviceBytes = 256 * 1024;
constexpr std::size_t kScenarioLogBytes = 32 * 1024;
constexpr Epoch kScenarioEpochs = 3;
constexpr std::uint64_t kScenarioLines = 2;

LineData patterned(std::uint64_t seed) {
  LineData d{};
  for (std::size_t i = 0; i < d.bytes.size(); ++i) {
    d.bytes[i] = static_cast<std::byte>((seed * 131 + i) & 0xff);
  }
  return d;
}

// "undo-flush": the §3.3 ordering bug the online checker cannot see. The
// undo record for each line is staged before the data store, but the log
// flush is deferred to the end of the epoch — after the data flushes. On
// the observed schedule everything still lands before the commit, so no
// online rule fires; yet a crash between a data flush and the deferred log
// flush leaves new data durable with no durable record to roll it back.
// The clean twin flushes the log (with its trailing drain) before each
// data store.
Status undo_flush_workload(pmem::PmemDevice& dev, CrashOracle& oracle,
                           bool buggy) {
  auto pool = pmem::PmemPool::create(&dev, kScenarioLogBytes);
  if (!pool.ok()) return pool.status();
  auto& p = pool.value();
  PAX_RETURN_IF_ERROR(oracle.note_commit(p.committed_epoch()));
  const std::size_t extent = p.log_size() & ~(kCacheLineSize - 1);
  device::UndoLogger logger(&dev, p.log_offset(), extent);
  for (Epoch e = 1; e <= kScenarioEpochs; ++e) {
    for (std::uint64_t i = 0; i < kScenarioLines; ++i) {
      const LineIndex line{p.data_offset() / kCacheLineSize + i};
      auto end = logger.log_line(e, line, dev.load_line(line));
      if (!end.ok()) return end.status();
      if (!buggy) logger.flush();  // record durable before the data flush
      dev.store_line(line, patterned(e * 16 + i));
      dev.flush_line(line);
    }
    logger.flush();  // buggy variant: records only become durable here
    dev.drain();
    p.commit_epoch(e);
    logger.reset_after_commit();
    PAX_RETURN_IF_ERROR(oracle.note_commit(e));
  }
  return Status::ok();
}

// "missing-flush": the undo protocol itself is correct (records durable
// before each data store), but the last line of every epoch is stored and
// never flushed before the commit — once the commit cell lands, the
// line's store is still in caches and a crash loses it with the epoch
// already durable. The online checker fires on this one
// (kUnflushedLineAtCommit); it exists to exercise the insert-flush repair
// action end to end.
Status missing_flush_workload(pmem::PmemDevice& dev, CrashOracle& oracle,
                              bool buggy) {
  auto pool = pmem::PmemPool::create(&dev, kScenarioLogBytes);
  if (!pool.ok()) return pool.status();
  auto& p = pool.value();
  PAX_RETURN_IF_ERROR(oracle.note_commit(p.committed_epoch()));
  const std::size_t extent = p.log_size() & ~(kCacheLineSize - 1);
  device::UndoLogger logger(&dev, p.log_offset(), extent);
  for (Epoch e = 1; e <= kScenarioEpochs; ++e) {
    for (std::uint64_t i = 0; i < kScenarioLines; ++i) {
      const LineIndex line{p.data_offset() / kCacheLineSize + i};
      auto end = logger.log_line(e, line, dev.load_line(line));
      if (!end.ok()) return end.status();
      logger.flush();  // record durable before the data store
      dev.store_line(line, patterned(e * 16 + i));
      if (!buggy || i + 1 != kScenarioLines) dev.flush_line(line);
    }
    dev.drain();
    p.commit_epoch(e);
    logger.reset_after_commit();
    PAX_RETURN_IF_ERROR(oracle.note_commit(e));
  }
  return Status::ok();
}

}  // namespace

const char* repair_action_kind_name(RepairActionKind k) {
  switch (k) {
    case RepairActionKind::kInsertFlushBeforeCommit:
      return "insert-flush-before-commit";
    case RepairActionKind::kHoistLogFlush:
      return "hoist-log-flush";
  }
  return "unknown";
}

std::string RepairAction::to_string() const {
  std::ostringstream os;
  os << repair_action_kind_name(kind);
  switch (kind) {
    case RepairActionKind::kInsertFlushBeforeCommit:
      os << ": flush line " << line << " + drain before commit of epoch "
         << epoch;
      break;
    case RepairActionKind::kHoistLogFlush:
      os << ": force log [" << logger << ", " << logger + log_end
         << ") durable before any flush of line " << line;
      break;
  }
  if (at_seq != 0) os << " (from trace seq " << at_seq << ")";
  return os.str();
}

std::string RepairPlan::to_string() const {
  if (actions.empty()) return "repair plan: nothing to repair\n";
  std::ostringstream os;
  os << "repair plan: " << actions.size() << " action(s)\n";
  for (const RepairAction& a : actions) {
    os << "  " << a.to_string() << "\n";
  }
  return os.str();
}

std::string RepairPlan::to_json() const {
  std::ostringstream os;
  os << "{\"actions\":[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const RepairAction& a = actions[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << repair_action_kind_name(a.kind)
       << "\",\"line\":" << a.line << ",\"epoch\":" << a.epoch
       << ",\"logger\":" << a.logger << ",\"log_end\":" << a.log_end
       << ",\"at_seq\":" << a.at_seq << "}";
  }
  os << "]}";
  return os.str();
}

RepairPlan advise_repairs(const AnalysisReport& report) {
  RepairPlan plan;
  std::set<std::pair<std::uint64_t, std::uint64_t>> inserted;
  std::map<std::uint64_t, RepairAction> hoists;  // line → widest action
  for (const Finding& f : report.findings) {
    switch (f.kind) {
      case FindingKind::kCommitWindow:
        if (f.line != kNoLine && inserted.insert({f.epoch, f.line}).second) {
          RepairAction a;
          a.kind = RepairActionKind::kInsertFlushBeforeCommit;
          a.line = f.line;
          a.epoch = f.epoch;
          a.at_seq = f.seq;
          plan.actions.push_back(std::move(a));
        }
        break;
      case FindingKind::kUndoFlushWindow:
      case FindingKind::kWritebackWindow: {
        if (f.line == kNoLine) break;
        RepairAction& a = hoists[f.line];
        if (a.log_end == 0) {
          a.kind = RepairActionKind::kHoistLogFlush;
          a.line = f.line;
          a.logger = f.logger;
          a.at_seq = f.seq;
        }
        a.log_end = std::max(a.log_end, f.log_end);
        break;
      }
      case FindingKind::kLockCycle:
      case FindingKind::kLockRankViolation:
      case FindingKind::kOnlineViolation:
        break;  // no mechanical flush/fence repair
    }
  }
  for (auto& [line, action] : hoists) {
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

RepairShim::RepairShim(const RepairPlan& plan) {
  for (const RepairAction& a : plan.actions) {
    switch (a.kind) {
      case RepairActionKind::kInsertFlushBeforeCommit: {
        auto it = std::find_if(
            insert_by_epoch_.begin(), insert_by_epoch_.end(),
            [&](const auto& entry) { return entry.first == a.epoch; });
        if (it == insert_by_epoch_.end()) {
          insert_by_epoch_.push_back({a.epoch, {a.line}});
        } else if (std::find(it->second.begin(), it->second.end(), a.line) ==
                   it->second.end()) {
          it->second.push_back(a.line);
        }
        break;
      }
      case RepairActionKind::kHoistLogFlush: {
        auto it = std::find_if(
            hoist_by_line_.begin(), hoist_by_line_.end(),
            [&](const auto& entry) { return entry.first == a.line; });
        if (it == hoist_by_line_.end()) {
          hoist_by_line_.push_back({a.line, {a.logger, a.log_end}});
        } else {
          it->second.log_end = std::max(it->second.log_end, a.log_end);
        }
        break;
      }
    }
  }
}

void RepairShim::before_epoch_commit(pmem::PmemDevice& dev,
                                     std::uint64_t epoch) {
  for (const auto& [plan_epoch, lines] : insert_by_epoch_) {
    if (plan_epoch != epoch) continue;
    for (std::uint64_t line : lines) {
      dev.flush_line(LineIndex{line});
    }
    dev.drain();
    activations_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

void RepairShim::before_flush(pmem::PmemDevice& dev, LineIndex line) {
  // The hoist's own flush_range re-enters this hook for each log line;
  // those lines carry no rules, so the recursion terminates immediately.
  for (const auto& [plan_line, hoist] : hoist_by_line_) {
    if (plan_line != line.value) continue;
    dev.flush_range(hoist.logger, hoist.log_end);
    dev.drain();
    activations_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

Result<RepairScenario> seeded_repair_scenario(const std::string& name,
                                              bool buggy) {
  RepairScenario s;
  s.name = name;
  s.device_bytes = kScenarioDeviceBytes;
  if (name == "undo-flush") {
    s.description =
        "undo-log flush deferred past the data flush (online-silent; a "
        "crash between them strands un-rollback-able data)";
    s.workload = [buggy](pmem::PmemDevice& dev, CrashOracle& oracle) {
      return undo_flush_workload(dev, oracle, buggy);
    };
    return s;
  }
  if (name == "missing-flush") {
    s.description = "one line per epoch is never flushed before the commit";
    s.workload = [buggy](pmem::PmemDevice& dev, CrashOracle& oracle) {
      return missing_flush_workload(dev, oracle, buggy);
    };
    return s;
  }
  return not_found("unknown repair scenario \"" + name +
                   "\" (try undo-flush or missing-flush)");
}

Result<std::vector<Event>> record_scenario_trace(const RepairScenario& s) {
  auto dev = pmem::PmemDevice::create_in_memory(s.device_bytes);
  CheckerOptions copts;
  copts.record_events = true;
  Checker checker(copts);
  dev->set_checker(&checker);
  CrashOracle oracle(dev.get(), /*collect=*/false);
  Status st = s.workload(*dev, oracle);
  dev->set_checker(nullptr);
  PAX_RETURN_IF_ERROR(st);
  return checker.recorded_events();
}

std::string RepairValidation::to_string() const {
  std::ostringstream os;
  os << "before repair: "
     << (before.clean() ? "clean" : std::to_string(before.findings.size()) +
                                        " crash finding(s), first bad point " +
                                        std::to_string(before.first_bad()))
     << "\n"
     << "after repair:  "
     << (after.clean() ? "clean" : std::to_string(after.findings.size()) +
                                       " crash finding(s), first bad point " +
                                       std::to_string(after.first_bad()))
     << "\n"
     << "repair actions fired " << activations << " time(s); verdict "
     << (flipped_clean() ? "FLIPPED CLEAN" : "unchanged") << "\n";
  return os.str();
}

Result<RepairValidation> validate_repair(const RepairScenario& scenario,
                                         const RepairPlan& plan,
                                         CrashExplorerOptions options) {
  RepairValidation v;
  {
    CrashExplorer explorer(scenario.device_bytes, scenario.workload, options);
    auto result = explorer.explore();
    if (!result.ok()) return result.status();
    v.before = std::move(result).value();
  }
  auto shim = std::make_shared<RepairShim>(plan);
  auto wrapped = [workload = scenario.workload, shim](
                     pmem::PmemDevice& dev, CrashOracle& oracle) {
    dev.set_repair_shim(shim.get());
    Status st = workload(dev, oracle);
    dev.set_repair_shim(nullptr);
    return st;
  };
  CrashExplorer explorer(scenario.device_bytes, std::move(wrapped), options);
  auto result = explorer.explore();
  if (!result.ok()) return result.status();
  v.after = std::move(result).value();
  v.activations = shim->activations();
  return v;
}

}  // namespace pax::check
