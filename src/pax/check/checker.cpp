#include "pax/check/checker.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace pax::check {
namespace {

std::atomic<std::uint64_t> g_checker_gen{0};

// One binding per thread: the ring this thread last emitted into, valid
// while (owner, gen) match. A thread alternating between live checkers just
// re-binds through the registry.
struct TlsSlot {
  const void* owner = nullptr;
  std::uint64_t gen = 0;
  void* ring = nullptr;
};
thread_local TlsSlot t_slot;

std::size_t round_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

std::string describe_lock(LockClass cls, std::uint64_t id) {
  return std::string(lock_class_name(cls)) + " #" + std::to_string(id);
}

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kStore: return "STORE";
    case EventType::kFlush: return "FLUSH";
    case EventType::kDrain: return "DRAIN";
    case EventType::kCrash: return "CRASH";
    case EventType::kLogAppend: return "LOG_APPEND";
    case EventType::kLogFlush: return "LOG_FLUSH";
    case EventType::kLogReset: return "LOG_RESET";
    case EventType::kWriteback: return "WRITEBACK";
    case EventType::kEpochSeal: return "EPOCH_SEAL";
    case EventType::kEpochCommit: return "EPOCH_COMMIT";
    case EventType::kPullInvoke: return "PULL";
    case EventType::kSyncPush: return "SYNC_PUSH";
    case EventType::kSyncBatchOk: return "SYNC_BATCH_OK";
    case EventType::kSyncBatchFail: return "SYNC_BATCH_FAIL";
    case EventType::kDigestApply: return "DIGEST_APPLY";
    case EventType::kLockAcquire: return "LOCK_ACQ";
    case EventType::kLockRelease: return "LOCK_REL";
    case EventType::kPipelineSeal: return "PIPE_SEAL";
    case EventType::kPipelinePage: return "PIPE_PAGE";
    case EventType::kTaskDispatch: return "TASK_DISPATCH";
    case EventType::kTaskBegin: return "TASK_BEGIN";
    case EventType::kTaskEnd: return "TASK_END";
    case EventType::kTaskJoin: return "TASK_JOIN";
  }
  return "?";
}

const char* lock_class_name(LockClass c) {
  switch (c) {
    case LockClass::kSyncMu: return "sync-mu";
    case LockClass::kEpochGate: return "epoch-gate";
    case LockClass::kStripe: return "stripe";
    case LockClass::kLogMu: return "log-mu";
  }
  return "?";
}

const char* rule_name(Rule r) {
  switch (r) {
    case Rule::kUnflushedLineAtCommit: return "unflushed-line-at-commit";
    case Rule::kCommitWithoutFence: return "commit-without-fence";
    case Rule::kWritebackBeforeUndoDurable:
      return "writeback-before-undo-durable";
    case Rule::kDigestBeforeBatchOutcome:
      return "digest-before-batch-outcome";
    case Rule::kLockOrderInversion: return "lock-order-inversion";
    case Rule::kLockSelfDeadlock: return "lock-self-deadlock";
    case Rule::kDoubleStripeLock: return "double-stripe-lock";
    case Rule::kPullWhileLocked: return "pull-while-locked";
    case Rule::kSealedEpochMutation: return "sealed-epoch-mutation";
    case Rule::kPipelineCommitOrder: return "pipeline-commit-order";
  }
  return "?";
}

namespace {

std::string event_to_string(const Event& e) {
  char buf[160];
  if (e.line != kNoLine) {
    std::snprintf(buf, sizeof(buf),
                  "#%" PRIu64 " t%u %-13s line=%" PRIu64 " a=%" PRIu64
                  " b=%" PRIu64,
                  e.seq, e.tid, event_type_name(e.type), e.line, e.a, e.b);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "#%" PRIu64 " t%u %-13s a=%" PRIu64 " b=%" PRIu64, e.seq,
                  e.tid, event_type_name(e.type), e.a, e.b);
  }
  return buf;
}

}  // namespace

std::string Violation::to_string() const {
  std::string out = std::string("[") + rule_name(rule) + "] " + detail;
  for (const Event& e : backtrace) {
    out += "\n    " + event_to_string(e);
  }
  return out;
}

std::size_t Report::count(Rule r) const {
  std::size_t n = 0;
  for (const Violation& v : violations) {
    if (v.rule == r) ++n;
  }
  return n;
}

std::string Report::to_string() const {
  std::string out;
  if (violations.empty()) {
    out = "paxcheck: clean";
  } else {
    out = "paxcheck: " + std::to_string(violations.size()) + " violation(s)";
    for (const Violation& v : violations) {
      out += "\n  " + v.to_string();
    }
  }
  out += "\n  diagnostics: " + std::to_string(diagnostics.events) +
         " event(s), " + std::to_string(diagnostics.redundant_flushes) +
         " redundant flush(es), " + std::to_string(diagnostics.settles) +
         " settle(s)";
  if (diagnostics.suppressed > 0) {
    out += ", " + std::to_string(diagnostics.suppressed) + " suppressed";
  }
  return out;
}

// --- Ring ----------------------------------------------------------------

// SPSC: the owning thread produces; the engine (under engine_mu_) consumes.
// Publication is the release store of tail; reuse of a slot is fenced by
// the consumer's release store of head.
struct Checker::Ring {
  explicit Ring(std::size_t cap) : buf(cap), mask(cap - 1) {}
  std::vector<Event> buf;
  const std::uint64_t mask;
  alignas(64) std::atomic<std::uint64_t> head{0};
  alignas(64) std::atomic<std::uint64_t> tail{0};
  // Producer-private snapshot of head: refreshed only when the ring looks
  // full, so the common-case emit never touches the consumer's cache line.
  std::uint64_t cached_head = 0;
  std::uint16_t tid = 0;
};

// One open-addressed slot: the key doubles as the empty sentinel; 16 bytes
// keeps the whole table cache-resident for realistic line counts, so the
// per-event state transition is one warm probe and no allocation.
struct Checker::LineState {
  std::uint64_t key = kNoLine;  // kNoLine = empty slot
  bool pending = false;         // stored to PM, not yet flushed
  bool pushed = false;          // in an in-flight sync_lines batch
  std::uint16_t pushed_tid = 0;
};

namespace {
std::size_t line_slot_hash(std::uint64_t line) {
  return static_cast<std::size_t>((line * 0x9e3779b97f4a7c15ull) >> 24);
}
}  // namespace

Checker::Checker(const CheckerOptions& options)
    : options_(options), gen_(g_checker_gen.fetch_add(1) + 1) {
  staged_.reserve(4096);
  recent_.resize(
      round_pow2(std::max<std::size_t>(options_.recent_events, 1024)));
}

Checker::~Checker() = default;

Checker::Ring* Checker::ring_for_this_thread() {
  if (t_slot.owner == this && t_slot.gen == gen_) {
    return static_cast<Ring*>(t_slot.ring);
  }
  std::lock_guard lock(rings_mu_);
  auto [it, inserted] =
      ring_by_thread_.try_emplace(std::this_thread::get_id(), nullptr);
  if (inserted) {
    auto ring = std::make_unique<Ring>(
        round_pow2(std::max<std::size_t>(options_.ring_capacity, 8)));
    ring->tid = static_cast<std::uint16_t>(rings_.size());
    it->second = ring.get();
    rings_.push_back(std::move(ring));
  }
  t_slot = {this, gen_, it->second};
  return it->second;
}

void Checker::emit(Event e) {
  Ring* ring = ring_for_this_thread();
  e.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  e.tid = ring->tid;

  const std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
  if (tail - ring->cached_head > ring->mask) {
    ring->cached_head = ring->head.load(std::memory_order_acquire);
    if (tail - ring->cached_head > ring->mask) {
      // Full: hand the backlog to the engine early (staged, not replayed —
      // replay happens only at ordering points, where sorting by seq
      // restores the global order).
      std::lock_guard lock(engine_mu_);
      drain_ring_locked(ring);
      ring->cached_head = ring->head.load(std::memory_order_relaxed);
    }
  }
  ring->buf[tail & ring->mask] = e;
  ring->tail.store(tail + 1, std::memory_order_release);

  switch (e.type) {
    case EventType::kDrain:
    case EventType::kCrash:
    case EventType::kLogFlush:
    case EventType::kEpochSeal:
    case EventType::kEpochCommit:
    case EventType::kSyncBatchOk:
    case EventType::kSyncBatchFail: {
      // Ordering points: everything that must precede this event is
      // published (the emitters held the same synchronization), so replay.
      std::lock_guard lock(engine_mu_);
      settle_locked();
      break;
    }
    default:
      break;
  }
}

void Checker::drain_ring_locked(Ring* ring) {
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = ring->tail.load(std::memory_order_acquire);
  if (head == tail) return;
  // At most two contiguous segments (the ring may wrap once).
  const std::uint64_t lo = head & ring->mask;
  const std::uint64_t hi = tail & ring->mask;
  const Event* buf = ring->buf.data();
  if (lo < hi || hi == 0) {
    const std::uint64_t end = hi == 0 ? ring->buf.size() : hi;
    staged_.insert(staged_.end(), buf + lo, buf + end);
  } else {
    staged_.insert(staged_.end(), buf + lo, buf + ring->buf.size());
    staged_.insert(staged_.end(), buf, buf + hi);
  }
  ring->head.store(tail, std::memory_order_release);
}

void Checker::settle_locked() {
  {
    std::lock_guard lock(rings_mu_);
    for (auto& ring : rings_) drain_ring_locked(ring.get());
  }
  const auto by_seq = [](const Event& a, const Event& b) {
    return a.seq < b.seq;
  };
  // Single-producer stretches stage already-ordered runs; skip the sort.
  if (!std::is_sorted(staged_.begin(), staged_.end(), by_seq)) {
    std::sort(staged_.begin(), staged_.end(), by_seq);
  }
  const std::uint64_t recent_mask = recent_.size() - 1;
  for (const Event& e : staged_) {
    recent_[recent_pos_++ & recent_mask] = e;
    if (options_.record_events) recorded_.push_back(e);
    process(e);
  }
  diag_.events += staged_.size();
  staged_.clear();
  ++diag_.settles;
}

Checker::LineState& Checker::line_state(std::uint64_t line) {
  if (line_slots_.empty()) line_slots_.resize(1024);
  if ((line_count_ + 1) * 2 > line_slots_.size()) rehash_lines();
  const std::size_t mask = line_slots_.size() - 1;
  std::size_t idx = line_slot_hash(line) & mask;
  while (line_slots_[idx].key != line) {
    if (line_slots_[idx].key == kNoLine) {
      line_slots_[idx].key = line;
      ++line_count_;
      break;
    }
    idx = (idx + 1) & mask;
  }
  return line_slots_[idx];
}

Checker::LineState* Checker::find_line(std::uint64_t line) {
  if (line_slots_.empty()) return nullptr;
  const std::size_t mask = line_slots_.size() - 1;
  std::size_t idx = line_slot_hash(line) & mask;
  while (line_slots_[idx].key != kNoLine) {
    if (line_slots_[idx].key == line) return &line_slots_[idx];
    idx = (idx + 1) & mask;
  }
  return nullptr;
}

void Checker::rehash_lines() {
  std::vector<LineState> old = std::move(line_slots_);
  line_slots_.assign(old.size() * 2, LineState{});
  const std::size_t mask = line_slots_.size() - 1;
  for (const LineState& ls : old) {
    if (ls.key == kNoLine) continue;
    std::size_t idx = line_slot_hash(ls.key) & mask;
    while (line_slots_[idx].key != kNoLine) idx = (idx + 1) & mask;
    line_slots_[idx] = ls;
  }
}

void Checker::add_violation(Rule rule, const Event& e,
                            std::uint64_t dedup_key, std::string detail) {
  if (!reported_.emplace(static_cast<std::uint8_t>(rule), dedup_key)
           .second) {
    return;
  }
  if (violations_.size() >= options_.max_violations) {
    ++diag_.suppressed;
    return;
  }
  Violation v;
  v.rule = rule;
  v.line = e.line;
  v.tid = e.tid;
  v.detail = std::move(detail);
  // Mine the recent-event window for the line's preceding events — paid
  // only when a violation actually fires.
  if (e.line != kNoLine && options_.history_per_line > 0) {
    const std::uint64_t mask = recent_.size() - 1;
    const std::uint64_t span =
        std::min<std::uint64_t>(recent_pos_, recent_.size());
    std::vector<Event> newest_first;
    for (std::uint64_t i = 0;
         i < span && newest_first.size() < options_.history_per_line; ++i) {
      const Event& r = recent_[(recent_pos_ - 1 - i) & mask];
      if (r.line == e.line && r.seq != e.seq) newest_first.push_back(r);
    }
    v.backtrace.assign(newest_first.rbegin(), newest_first.rend());
  }
  v.backtrace.push_back(e);
  violations_.push_back(std::move(v));
}

void Checker::process_lock_acquire(const Event& e) {
  auto& stack = lock_stacks_[e.tid];
  const auto cls = static_cast<LockClass>(e.a);
  const std::uint64_t key = (static_cast<std::uint64_t>(e.tid) << 32) ^
                            (e.a << 16) ^ (e.b & 0xffff);
  for (const Event& held : stack) {
    const auto held_cls = static_cast<LockClass>(held.a);
    if (held_cls == cls && held.b == e.b) {
      add_violation(Rule::kLockSelfDeadlock, e, key,
                    describe_lock(cls, e.b) + " re-acquired while " +
                        describe_lock(held_cls, held.b) +
                        " (seq " + std::to_string(held.seq) +
                        ") is still held by the same thread");
    } else if (held_cls == cls && cls == LockClass::kStripe) {
      add_violation(Rule::kDoubleStripeLock, e, key,
                    describe_lock(cls, e.b) + " acquired while " +
                        describe_lock(held_cls, held.b) +
                        " is held (at most one stripe at a time)");
    } else if (static_cast<int>(held_cls) > static_cast<int>(cls)) {
      add_violation(Rule::kLockOrderInversion, e, key,
                    describe_lock(cls, e.b) + " acquired while holding " +
                        describe_lock(held_cls, held.b) +
                        " (required order: sync-mu < epoch-gate < stripe "
                        "< log-mu)");
    }
  }
  stack.push_back(e);
}

void Checker::process(const Event& e) {
  switch (e.type) {
    case EventType::kStore: {
      if (!options_.persist_order) break;
      LineState& ls = line_state(e.line);
      if (!ls.pending) {
        ls.pending = true;
        ++pending_count_;
      }
      break;
    }
    case EventType::kFlush: {
      if (!options_.persist_order) break;
      if (e.flags & kFlagEmptyFlush) {
        ++diag_.redundant_flushes;
      } else {
        ++flushes_since_drain_;
      }
      LineState& ls = line_state(e.line);
      if (ls.pending) {
        ls.pending = false;
        --pending_count_;
      }
      break;
    }
    case EventType::kDrain:
      flushes_since_drain_ = 0;
      break;
    case EventType::kCrash:
      // Power loss resolves the pending overlay; in-flight sync state and
      // log watermarks restart from scratch with the next attach.
      for (LineState& ls : line_slots_) {
        ls.pending = false;
        ls.pushed = false;
      }
      for (auto& pushed : pushed_by_tid_) pushed.clear();
      pending_count_ = 0;
      flushes_since_drain_ = 0;
      log_durable_.clear();
      pipeline_fifo_.clear();
      break;
    case EventType::kLogAppend:
      break;
    case EventType::kLogFlush:
      log_durable_[e.a] = e.b;
      break;
    case EventType::kLogReset:
      log_durable_[e.a] = 0;
      break;
    case EventType::kWriteback: {
      if (!options_.persist_order) break;
      const auto it = log_durable_.find(e.a);
      const std::uint64_t durable =
          it == log_durable_.end() ? 0 : it->second;
      if (e.b > durable) {
        add_violation(
            Rule::kWritebackBeforeUndoDurable, e, e.line,
            "line " + std::to_string(e.line) +
                " written back while its undo record (end " +
                std::to_string(e.b) + ") is beyond logger " +
                std::to_string(e.a) + "'s durable watermark " +
                std::to_string(durable));
      }
      break;
    }
    case EventType::kEpochSeal: {
      if (!options_.persist_order) break;
      if (!pipeline_fifo_.empty() && pipeline_fifo_.front().epoch != e.a) {
        add_violation(Rule::kPipelineCommitOrder, e, e.a,
                      "device sealed epoch " + std::to_string(e.a) +
                          " while pipeline snapshot for epoch " +
                          std::to_string(pipeline_fifo_.front().epoch) +
                          " is at the head of the drain queue");
      }
      break;
    }
    case EventType::kEpochCommit: {
      if (!options_.persist_order) break;
      if (!pipeline_fifo_.empty()) {
        if (pipeline_fifo_.front().epoch == e.a) {
          pipeline_fifo_.erase(pipeline_fifo_.begin());
        } else {
          add_violation(Rule::kPipelineCommitOrder, e, e.a,
                        "epoch " + std::to_string(e.a) +
                            " committed while pipeline snapshot for epoch " +
                            std::to_string(pipeline_fifo_.front().epoch) +
                            " is at the head of the drain queue");
        }
      }
      if (pending_count_ > 0) {  // clean commits never scan the table
        std::vector<std::uint64_t> pending;
        pending.reserve(pending_count_);
        for (const LineState& ls : line_slots_) {
          if (ls.key != kNoLine && ls.pending) pending.push_back(ls.key);
        }
        std::sort(pending.begin(), pending.end());
        for (std::uint64_t line : pending) {
          Event scoped = e;
          scoped.line = line;
          add_violation(Rule::kUnflushedLineAtCommit, scoped, line,
                        "line " + std::to_string(line) +
                            " stored but not flushed when epoch " +
                            std::to_string(e.a) + " committed");
        }
      }
      if (flushes_since_drain_ > 0) {
        add_violation(Rule::kCommitWithoutFence, e, e.a,
                      std::to_string(flushes_since_drain_) +
                          " flush(es) not covered by a drain when epoch " +
                          std::to_string(e.a) + " committed");
      }
      break;
    }
    case EventType::kPullInvoke: {
      if (!options_.lock_discipline) break;
      const auto it = lock_stacks_.find(e.tid);
      if (it == lock_stacks_.end()) break;
      for (const Event& held : it->second) {
        const auto held_cls = static_cast<LockClass>(held.a);
        if (held_cls == LockClass::kStripe ||
            held_cls == LockClass::kLogMu) {
          add_violation(Rule::kPullWhileLocked, e, e.tid,
                        "host pull invoked while holding " +
                            describe_lock(held_cls, held.b) +
                            " — the pull may block on a thread waiting "
                            "for that lock");
          break;
        }
      }
      break;
    }
    case EventType::kSyncPush: {
      if (!options_.persist_order) break;
      // While snapshots are outstanding, the drain worker is the only sync
      // producer and must push only the head snapshot's pages — anything
      // else is live next-epoch mutation bleeding into the sealed epoch.
      if (!pipeline_fifo_.empty() &&
          pipeline_fifo_.front().pages.count(e.line >> 6) == 0) {
        add_violation(Rule::kSealedEpochMutation, e, e.line,
                      "line " + std::to_string(e.line) +
                          " pushed while sealed epoch " +
                          std::to_string(pipeline_fifo_.front().epoch) +
                          "'s snapshot (which does not cover it) heads the "
                          "drain queue");
      }
      LineState& ls = line_state(e.line);
      ls.pushed = true;
      ls.pushed_tid = e.tid;
      if (pushed_by_tid_.size() <= e.tid) pushed_by_tid_.resize(e.tid + 1);
      pushed_by_tid_[e.tid].push_back(e.line);
      break;
    }
    case EventType::kSyncBatchOk:
    case EventType::kSyncBatchFail: {
      if (!options_.persist_order) break;
      if (e.tid < pushed_by_tid_.size()) {
        for (std::uint64_t line : pushed_by_tid_[e.tid]) {
          // A later re-push by another thread owns the line now: leave it.
          if (LineState* ls = find_line(line);
              ls != nullptr && ls->pushed && ls->pushed_tid == e.tid) {
            ls->pushed = false;
          }
        }
        pushed_by_tid_[e.tid].clear();
      }
      break;
    }
    case EventType::kDigestApply: {
      if (!options_.persist_order) break;
      LineState& ls = line_state(e.line);
      if (ls.pushed) {
        add_violation(Rule::kDigestBeforeBatchOutcome, e, e.line,
                      "digest for line " + std::to_string(e.line) +
                          " applied while its sync_lines batch is still "
                          "in flight");
      }
      break;
    }
    case EventType::kPipelineSeal: {
      if (!options_.persist_order) break;
      pipeline_fifo_.push_back({e.a, {}});
      break;
    }
    case EventType::kPipelinePage: {
      if (!options_.persist_order) break;
      // Pages arrive right after their seal event; match from the back.
      for (auto it = pipeline_fifo_.rbegin(); it != pipeline_fifo_.rend();
           ++it) {
        if (it->epoch == e.a) {
          it->pages.insert(e.line >> 6);
          break;
        }
      }
      break;
    }
    case EventType::kLockAcquire:
      if (options_.lock_discipline) process_lock_acquire(e);
      break;
    case EventType::kLockRelease: {
      if (!options_.lock_discipline) break;
      auto& stack = lock_stacks_[e.tid];
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->a == e.a && it->b == e.b) {
          stack.erase(std::next(it).base());
          break;
        }
      }
      break;
    }
    case EventType::kTaskDispatch:
    case EventType::kTaskBegin:
    case EventType::kTaskEnd:
    case EventType::kTaskJoin:
      // Fork-join bracketing is offline material: the happens-before
      // analysis (analyze.hpp) consumes it; no online rule does.
      break;
  }
}

Report Checker::snapshot_report_locked() const {
  Report r;
  r.violations = violations_;
  r.diagnostics = diag_;
  return r;
}

Report Checker::report() {
  std::lock_guard lock(engine_mu_);
  settle_locked();
  return snapshot_report_locked();
}

Report Checker::replay(std::span<const Event> events) {
  std::lock_guard lock(engine_mu_);
  // Anything already emitted live settles first, then the trace is staged
  // verbatim (no re-ticketing) and settled in its recorded seq order.
  settle_locked();
  staged_.insert(staged_.end(), events.begin(), events.end());
  std::uint64_t max_seq = seq_.load(std::memory_order_relaxed);
  for (const Event& e : events) max_seq = std::max(max_seq, e.seq);
  settle_locked();
  // Live events emitted after the replay must order after the trace.
  seq_.store(max_seq, std::memory_order_relaxed);
  return snapshot_report_locked();
}

std::vector<Event> Checker::recorded_events() {
  std::lock_guard lock(engine_mu_);
  settle_locked();
  return recorded_;
}

// --- Emission helpers ----------------------------------------------------

void Checker::on_store(std::uint64_t line) {
  Event e;
  e.type = EventType::kStore;
  e.line = line;
  emit(e);
}

void Checker::on_flush(std::uint64_t line, bool empty) {
  Event e;
  e.type = EventType::kFlush;
  e.line = line;
  if (empty) e.flags |= kFlagEmptyFlush;
  emit(e);
}

void Checker::on_drain() {
  Event e;
  e.type = EventType::kDrain;
  emit(e);
}

void Checker::on_crash() {
  Event e;
  e.type = EventType::kCrash;
  emit(e);
}

void Checker::on_log_append(std::uint64_t logger, std::uint64_t line,
                            std::uint64_t end) {
  Event e;
  e.type = EventType::kLogAppend;
  e.line = line;
  e.a = logger;
  e.b = end;
  emit(e);
}

void Checker::on_log_flush(std::uint64_t logger, std::uint64_t durable) {
  Event e;
  e.type = EventType::kLogFlush;
  e.a = logger;
  e.b = durable;
  emit(e);
}

void Checker::on_log_reset(std::uint64_t logger) {
  Event e;
  e.type = EventType::kLogReset;
  e.a = logger;
  emit(e);
}

void Checker::on_writeback(std::uint64_t line, std::uint64_t logger,
                           std::uint64_t end, bool gate_observed) {
  Event e;
  e.type = EventType::kWriteback;
  e.line = line;
  e.a = logger;
  e.b = end;
  if (gate_observed) e.flags |= kFlagGateObserved;
  emit(e);
}

void Checker::on_task_dispatch(std::uint64_t token) {
  Event e;
  e.type = EventType::kTaskDispatch;
  e.a = token;
  emit(e);
}

void Checker::on_task_begin(std::uint64_t token) {
  Event e;
  e.type = EventType::kTaskBegin;
  e.a = token;
  emit(e);
}

void Checker::on_task_end(std::uint64_t token) {
  Event e;
  e.type = EventType::kTaskEnd;
  e.a = token;
  emit(e);
}

void Checker::on_task_join(std::uint64_t token) {
  Event e;
  e.type = EventType::kTaskJoin;
  e.a = token;
  emit(e);
}

void Checker::on_epoch_seal(std::uint64_t epoch) {
  Event e;
  e.type = EventType::kEpochSeal;
  e.a = epoch;
  emit(e);
}

void Checker::on_epoch_commit(std::uint64_t epoch) {
  Event e;
  e.type = EventType::kEpochCommit;
  e.a = epoch;
  emit(e);
}

void Checker::on_pull_invoke(std::uint64_t line) {
  Event e;
  e.type = EventType::kPullInvoke;
  e.line = line;
  emit(e);
}

void Checker::on_sync_push(std::uint64_t line) {
  Event e;
  e.type = EventType::kSyncPush;
  e.line = line;
  emit(e);
}

void Checker::on_sync_batch_ok() {
  Event e;
  e.type = EventType::kSyncBatchOk;
  emit(e);
}

void Checker::on_sync_batch_fail() {
  Event e;
  e.type = EventType::kSyncBatchFail;
  emit(e);
}

void Checker::on_digest_apply(std::uint64_t line) {
  Event e;
  e.type = EventType::kDigestApply;
  e.line = line;
  emit(e);
}

void Checker::on_pipeline_seal(std::uint64_t epoch,
                               std::span<const std::uint64_t> page_lines) {
  Event seal;
  seal.type = EventType::kPipelineSeal;
  seal.a = epoch;
  seal.b = page_lines.size();
  emit(seal);
  for (std::uint64_t line : page_lines) {
    Event page;
    page.type = EventType::kPipelinePage;
    page.line = line;
    page.a = epoch;
    emit(page);
  }
}

void Checker::on_lock_acquire(LockClass cls, std::uint32_t id, bool shared) {
  Event e;
  e.type = EventType::kLockAcquire;
  e.a = static_cast<std::uint64_t>(cls);
  e.b = id;
  if (shared) e.flags |= kFlagSharedLock;
  emit(e);
}

void Checker::on_lock_release(LockClass cls, std::uint32_t id) {
  Event e;
  e.type = EventType::kLockRelease;
  e.a = static_cast<std::uint64_t>(cls);
  e.b = id;
  emit(e);
}

// --- LockToken -----------------------------------------------------------

LockToken::LockToken(Checker* checker, LockClass cls, std::uint32_t id,
                     bool shared)
    : checker_(checker), cls_(cls), id_(id) {
  if (checker_ != nullptr) checker_->on_lock_acquire(cls_, id_, shared);
}

LockToken::LockToken(LockToken&& other) noexcept
    : checker_(other.checker_), cls_(other.cls_), id_(other.id_) {
  other.checker_ = nullptr;
}

LockToken& LockToken::operator=(LockToken&& other) noexcept {
  if (this != &other) {
    if (checker_ != nullptr) checker_->on_lock_release(cls_, id_);
    checker_ = other.checker_;
    cls_ = other.cls_;
    id_ = other.id_;
    other.checker_ = nullptr;
  }
  return *this;
}

LockToken::~LockToken() {
  if (checker_ != nullptr) checker_->on_lock_release(cls_, id_);
}

}  // namespace pax::check
