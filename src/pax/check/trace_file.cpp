#include "pax/check/trace_file.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

#include "pax/common/crc.hpp"

namespace pax::check {
namespace {

// Field-by-field little-endian packing: the struct layout of Event is an
// in-memory concern and must not leak into the on-disk format.
template <typename T>
void put(std::byte* dst, std::size_t off, T value) {
  std::memcpy(dst + off, &value, sizeof(T));
}

template <typename T>
T get(const std::byte* src, std::size_t off) {
  T value;
  std::memcpy(&value, src + off, sizeof(T));
  return value;
}

// Highest event-type byte each format version may carry: decoding enforces
// the vocabulary the file claims, so a v1 artifact containing a v2 type is
// corruption, not silent acceptance.
std::uint8_t max_event_type_for(std::uint32_t version) {
  return version == 1 ? static_cast<std::uint8_t>(EventType::kPipelinePage)
                      : static_cast<std::uint8_t>(EventType::kTaskJoin);
}

}  // namespace

std::vector<std::byte> encode_trace(std::span<const Event> events) {
  std::vector<std::byte> out(kTraceHeaderSize +
                             events.size() * kTraceRecordSize);
  std::byte* p = out.data() + kTraceHeaderSize;
  for (const Event& e : events) {
    put(p, 0, e.seq);
    put(p, 8, e.line);
    put(p, 16, e.a);
    put(p, 24, e.b);
    put(p, 32, static_cast<std::uint8_t>(e.type));
    put(p, 33, e.flags);
    put(p, 34, e.tid);
    put(p, 36, std::uint32_t{0});
    p += kTraceRecordSize;
  }
  std::byte* h = out.data();
  put(h, 0, kTraceMagic);
  put(h, 8, kTraceVersion);
  put(h, 12, std::uint32_t{0});
  put(h, 16, static_cast<std::uint64_t>(events.size()));
  put(h, 24, crc32c(out.data() + kTraceHeaderSize,
                    out.size() - kTraceHeaderSize));
  put(h, 28, crc32c(out.data(), 28));
  return out;
}

Result<std::vector<Event>> decode_trace(std::span<const std::byte> bytes) {
  auto trace = decode_trace_versioned(bytes);
  if (!trace.ok()) return trace.status();
  return std::move(trace.value().events);
}

Result<Trace> decode_trace_versioned(std::span<const std::byte> bytes) {
  if (bytes.size() < kTraceHeaderSize) {
    return corruption(".paxevt truncated: " + std::to_string(bytes.size()) +
                      " bytes, header needs " +
                      std::to_string(kTraceHeaderSize));
  }
  const std::byte* h = bytes.data();
  if (get<std::uint64_t>(h, 0) != kTraceMagic) {
    return corruption(".paxevt bad magic");
  }
  if (get<std::uint32_t>(h, 28) != crc32c(h, 28)) {
    return corruption(".paxevt header CRC mismatch");
  }
  const std::uint32_t version = get<std::uint32_t>(h, 8);
  if (version == 0 || version > kTraceVersion) {
    return invalid_argument(".paxevt version " + std::to_string(version) +
                            " not supported (this reader handles 1.." +
                            std::to_string(kTraceVersion) + ")");
  }
  const std::uint8_t max_type = max_event_type_for(version);
  const std::uint64_t count = get<std::uint64_t>(h, 16);
  // Overflow-safe size check: count came off disk, trust nothing.
  if (count > (bytes.size() - kTraceHeaderSize) / kTraceRecordSize ||
      bytes.size() != kTraceHeaderSize + count * kTraceRecordSize) {
    return corruption(".paxevt truncated: header claims " +
                      std::to_string(count) + " event(s), " +
                      std::to_string(bytes.size()) + " bytes present");
  }
  if (get<std::uint32_t>(h, 24) !=
      crc32c(h + kTraceHeaderSize, bytes.size() - kTraceHeaderSize)) {
    return corruption(".paxevt payload CRC mismatch");
  }

  Trace trace;
  trace.version = version;
  std::vector<Event>& events = trace.events;
  events.reserve(count);
  const std::byte* p = h + kTraceHeaderSize;
  for (std::uint64_t i = 0; i < count; ++i, p += kTraceRecordSize) {
    const std::uint8_t raw_type = get<std::uint8_t>(p, 32);
    if (raw_type > max_type) {
      return corruption(".paxevt event " + std::to_string(i) +
                        " has unknown type " + std::to_string(raw_type) +
                        " for version " + std::to_string(version));
    }
    Event e;
    e.seq = get<std::uint64_t>(p, 0);
    e.line = get<std::uint64_t>(p, 8);
    e.a = get<std::uint64_t>(p, 16);
    e.b = get<std::uint64_t>(p, 24);
    e.type = static_cast<EventType>(raw_type);
    e.flags = get<std::uint8_t>(p, 33);
    e.tid = get<std::uint16_t>(p, 34);
    events.push_back(e);
  }
  return trace;
}

Status write_trace(const std::string& path, std::span<const Event> events) {
  const std::vector<std::byte> buf = encode_trace(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return io_error("cannot open " + path + " for writing");
  const std::size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != buf.size() || !closed) {
    return io_error("short write to " + path);
  }
  return Status::ok();
}

Result<std::vector<Event>> read_trace(const std::string& path) {
  auto trace = read_trace_versioned(path);
  if (!trace.ok()) return trace.status();
  return std::move(trace.value().events);
}

Result<Trace> read_trace_versioned(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return io_error("cannot open " + path);
  std::vector<std::byte> buf;
  std::byte chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return io_error("read failed for " + path);
  return decode_trace_versioned(buf);
}

}  // namespace pax::check
