// Systematic crash-point exploration: enumerate every crash, audit every
// recovery.
//
// PaxCheck (checker.hpp) validates the ordering of ONE execution, and the
// recovery tests crash at hand-picked sites. CrashExplorer closes both
// gaps. It runs a deterministic workload once — the *reference pass* — to
// learn the device's total crash-countable event count, record the PaxCheck
// event stream, and snapshot the durable data extent at every committed
// epoch. Then, for every k-th device persistence event, it re-executes the
// workload with a consistent-cut capture armed at that event
// (PmemDevice::arm_crash_point), resolves the cut under each requested
// CrashConfig mode (drop_all / random / torn — one captured cut serves all
// three), and audits the resulting post-crash device three ways:
//
//   1. recovery must succeed (pool header readable, recover_pool ok);
//   2. the PaxCheck rules must stay silent over [recorded stream truncated
//      at the crash point] + crash + recovery — the full persist-order and
//      lock-discipline audit, localized to this crash point;
//   3. the recovered state must byte-exactly equal one of the committed
//      snapshots the crash point straddles — "pre-epoch or post-epoch,
//      nothing in between" — plus any caller-supplied invariant.
//
// Every failure is a CrashFinding naming the exact first bad crash index;
// with an artifact directory set, each finding also writes the audited
// event stream as a replayable .paxevt file (trace_file.hpp).
//
// Determinism contract: the workload must produce the identical device
// event sequence on every execution — fixed seeds, no wall-clock, single-
// threaded persistence (libpax workloads: RuntimeOptions::deterministic(),
// plus a fixed vpm_base_hint so heap-internal raw pointers land at the
// same addresses and snapshots compare byte-equal). The explorer verifies
// the total event count on every re-execution and fails loudly on drift.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pmem_device.hpp"
#include "pax/pmem/pool.hpp"

namespace pax::check {

/// Collected on the reference (crash-free) execution: one byte-exact
/// snapshot of the durable data extent per committed epoch, tagged with the
/// device's crash-event count at commit time. Workloads call note_commit()
/// right after attach/recovery finishes (the baseline epoch) and right
/// after every persist; the explorer then knows, for any crash point, which
/// snapshots a correct recovery may land on. During crash re-executions the
/// explorer passes a non-collecting oracle, keeping note_commit free of
/// device side effects either way (it only reads).
class CrashOracle {
 public:
  CrashOracle(pmem::PmemDevice* device, bool collect)
      : device_(device), collect_(collect) {}

  /// Records "epoch `epoch` is durably committed; the data extent's durable
  /// bytes are its snapshot". Epochs must arrive in increasing order,
  /// starting with the post-attach baseline.
  Status note_commit(Epoch epoch);

  std::size_t snapshot_count() const { return snapshots_.size(); }

  /// Event count at the baseline snapshot. Crash points at or before it
  /// fall inside pool setup, where no committed snapshot exists to compare
  /// against; enumeration starts after it.
  std::uint64_t baseline_events() const;

  /// The pre-or-post-epoch invariant: the recovered pool must sit at an
  /// epoch the crash point allows (the newest epoch committed at or before
  /// the crash, or the immediately following one whose commit the crash
  /// landed inside) and match that epoch's snapshot byte-for-byte.
  Status check_recovered(pmem::PmemPool& pool,
                         std::uint64_t crash_after) const;

 private:
  struct Snapshot {
    Epoch epoch = 0;
    std::uint64_t events_at = 0;
    std::vector<std::byte> data;
  };

  pmem::PmemDevice* device_;
  bool collect_;
  std::vector<Snapshot> snapshots_;
};

/// One named crash lottery.
struct CrashMode {
  std::string name;
  pmem::CrashConfig config;
};

struct CrashExplorerOptions {
  /// Test every k-th device persistence event (1 = exhaustive).
  std::uint64_t every = 1;
  /// Cap on enumerated crash points (0 = unlimited). When it bites, points
  /// are sampled evenly across the run instead of truncating the tail.
  std::uint64_t max_crash_points = 0;
  /// Seed for the random/torn lottery modes.
  std::uint64_t seed = 1;
  /// Crash modes to resolve each cut under; empty = all three defaults
  /// (drop_all, random 0.5, torn 0.5).
  std::vector<CrashMode> modes;
  /// Run the PaxCheck rule audit over truncated stream + crash + recovery.
  /// Off leaves only recovery success + the snapshot/app invariants.
  bool paxcheck_audit = true;
  /// Directory to write one .paxevt artifact per finding ("" = none).
  std::string artifact_dir;
  /// Stop after this many findings (0 = collect every one).
  std::size_t max_findings = 16;
  CheckerOptions checker;

  static std::vector<CrashMode> default_modes(std::uint64_t seed);
};

inline constexpr std::uint64_t kNoCrashPoint = ~0ull;

struct CrashFinding {
  std::uint64_t crash_after = 0;  // device event index of the cut
  std::string mode;               // CrashMode::name
  std::string detail;             // first failed check
  Report audit;                   // PaxCheck report for this crash point
  std::string artifact;           // .paxevt path, if written

  std::string to_string() const;
};

struct ExplorationResult {
  std::uint64_t total_events = 0;   // reference-run crash-countable events
  std::uint64_t crash_points = 0;   // points actually tested
  std::uint64_t executions = 0;     // workload runs (reference + armed)
  std::uint64_t recoveries = 0;     // recover_pool invocations audited
  std::uint64_t epochs = 0;         // committed snapshots in the reference
  std::vector<CrashFinding> findings;

  bool clean() const { return findings.empty(); }
  /// Smallest failing crash index (kNoCrashPoint when clean).
  std::uint64_t first_bad() const;
  std::string to_string() const;
};

class CrashExplorer {
 public:
  /// A deterministic workload: builds whatever stack it wants on `device`
  /// (raw pool + WAL protocol, UndoLogger, full PaxRuntime), mutates,
  /// persists, and reports the baseline and every committed epoch to the
  /// oracle. See the determinism contract in the file comment.
  using Workload = std::function<Status(pmem::PmemDevice&, CrashOracle&)>;

  /// Optional application-level invariant, evaluated on each recovered
  /// pool after the snapshot check.
  using Invariant = std::function<Status(pmem::PmemPool&, Epoch recovered)>;

  CrashExplorer(std::size_t device_bytes, Workload workload,
                CrashExplorerOptions options = {});

  void set_invariant(Invariant invariant) {
    invariant_ = std::move(invariant);
  }

  /// Reference pass + full enumeration. An error Status means the harness
  /// itself failed (workload error on a clean device, nondeterministic
  /// event count); crash-consistency problems are findings in the result.
  Result<ExplorationResult> explore();

 private:
  Status audit_crash_point(std::uint64_t point,
                           std::span<const Event> reference,
                           const CrashOracle& oracle,
                           ExplorationResult& result);

  std::size_t device_bytes_;
  Workload workload_;
  Invariant invariant_;
  CrashExplorerOptions options_;
};

/// Longest prefix of a recorded stream containing exactly `n` device-
/// counted events (is_crash_countable), cut immediately after the n-th:
/// the event history a crash at device counter value n has observed.
/// Trailing non-countable markers (e.g. an epoch-commit note whose store
/// never executed) are excluded.
std::span<const Event> truncate_at_crash_event(std::span<const Event> events,
                                               std::uint64_t n);

}  // namespace pax::check
