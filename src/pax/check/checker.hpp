// PaxCheck: online persist-order and lock-discipline checking.
//
// A Checker is an opt-in observer attached to a PmemDevice
// (PmemDevice::set_checker). Every instrumented layer — the PM device, the
// undo loggers, the PAX device, and the libpax sync path — emits typed
// events (event.hpp) into a per-thread lock-free SPSC ring; at ordering
// points (drain, log flush, epoch commit, batch outcome, crash) the engine
// drains all rings, totally orders the events by their global sequence
// number, and replays them against two models:
//
//   Persist order —
//     * every line stored to PM is flushed before its epoch commits
//       (kUnflushedLineAtCommit);
//     * an epoch commit is preceded by a drain covering every flush since
//       the previous drain (kCommitWithoutFence);
//     * no write-back of a data line precedes the durability of the undo
//       record that can roll it back (kWritebackBeforeUndoDurable) — the
//       paper's §3.3 gating invariant, checked from the event trace instead
//       of trusted from the implementation;
//     * no tracked line digest advances while the sync_lines batch carrying
//       the line is still in flight (kDigestBeforeBatchOutcome) — a stale
//       digest would make the incremental diff skip a divergent line;
//     * flushes of already-clean lines are counted as a perf diagnostic
//       (redundant_flushes), not a violation: the WAL flush path may
//       legitimately re-flush the line holding the durable boundary.
//
//   Lock discipline — acquisition events from the device's epoch gate,
//     stripe mutexes, log mutex, and the libpax sync mutex are checked
//     against the documented order sync < epoch < stripe < log, at most one
//     stripe at a time, no re-entry, and no host pull while holding a
//     stripe or the log mutex (the deadlock TSan cannot see: it only
//     materializes under rare interleavings, but the order violation is
//     visible on every run).
//
// Ordering soundness: events carry a sequence number from one atomic
// counter. Whenever the real execution orders two conflicting actions (the
// same shard/stripe/log mutex, an atomic watermark publication, the epoch
// gate), the emitting instructions are ordered by the same synchronization,
// so their sequence numbers respect the real order and sorting by seq
// reconstructs a linearization that is faithful per line, per logger, and
// per thread. Events are emitted while the relevant lock is still held.
//
// The checker must outlive all emission: detach it (set_checker(nullptr))
// or destroy the instrumented components before destroying the checker.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "pax/check/event.hpp"

namespace pax::check {

enum class Rule : std::uint8_t {
  kUnflushedLineAtCommit,
  kCommitWithoutFence,
  kWritebackBeforeUndoDurable,
  kDigestBeforeBatchOutcome,
  kLockOrderInversion,
  kLockSelfDeadlock,
  kDoubleStripeLock,
  kPullWhileLocked,
  // Epoch pipeline (pipelined persist_async; dormant when no kPipelineSeal
  // events are emitted):
  //   * while runtime-sealed snapshots are outstanding, every kSyncPush must
  //     target a page captured by the OLDEST outstanding snapshot — a push
  //     outside that set means live epoch-(N+1) mutation leaked into the
  //     device sync of sealed epoch N (kSealedEpochMutation);
  //   * device kEpochSeal / kEpochCommit must match the snapshot FIFO head —
  //     commits crossing the drain queue out of order break the §3.3
  //     in-order epoch contract (kPipelineCommitOrder).
  kSealedEpochMutation,
  kPipelineCommitOrder,
};

const char* rule_name(Rule r);

struct CheckerOptions {
  bool persist_order = true;
  bool lock_discipline = true;
  /// Events buffered per thread before the producer hands off early
  /// (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Findings beyond this are counted but not stored.
  std::size_t max_violations = 64;
  /// Max preceding same-line events shown in a violation backtrace.
  std::size_t history_per_line = 6;
  /// Size of the global recent-event window backtraces are mined from
  /// (rounded up to a power of two). Backtraces older than this window are
  /// lost; per-event cost is one sequential 40-byte write either way.
  std::size_t recent_events = 65536;
  /// Keep a copy of every event the engine processes, retrievable with
  /// recorded_events() — the raw material for .paxevt traces
  /// (trace_file.hpp) and crash-point stream truncation. Unbounded memory
  /// (40 B/event); enable only for harness-sized workloads.
  bool record_events = false;
};

struct Violation {
  Rule rule = Rule::kUnflushedLineAtCommit;
  std::uint64_t line = kNoLine;  // kNoLine when not line-scoped
  std::uint16_t tid = 0;
  std::string detail;
  std::vector<Event> backtrace;  // recent events for the line, oldest first

  std::string to_string() const;
};

struct CheckDiagnostics {
  std::uint64_t redundant_flushes = 0;  // CLWB found nothing pending
  std::uint64_t events = 0;             // events processed by the engine
  std::uint64_t settles = 0;            // engine replay passes
  std::uint64_t suppressed = 0;         // violations beyond max_violations
};

struct Report {
  std::vector<Violation> violations;
  CheckDiagnostics diagnostics;

  bool clean() const { return violations.empty(); }
  /// Number of stored violations of `r`.
  std::size_t count(Rule r) const;
  std::string to_string() const;
};

class Checker;

/// RAII pairing of a real lock with its discipline events: construct right
/// after taking the lock, let it die as the lock is released. Null checker
/// (or a moved-from token) emits nothing.
class LockToken {
 public:
  LockToken() = default;
  LockToken(Checker* checker, LockClass cls, std::uint32_t id, bool shared);
  LockToken(LockToken&& other) noexcept;
  LockToken& operator=(LockToken&& other) noexcept;
  LockToken(const LockToken&) = delete;
  LockToken& operator=(const LockToken&) = delete;
  ~LockToken();

 private:
  Checker* checker_ = nullptr;
  LockClass cls_ = LockClass::kSyncMu;
  std::uint32_t id_ = 0;
};

class Checker {
 public:
  explicit Checker(const CheckerOptions& options = {});
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  // --- Emission (any thread; cheap, allocation-free on the fast path) ----
  void on_store(std::uint64_t line);
  void on_flush(std::uint64_t line, bool empty);
  void on_drain();
  void on_crash();
  void on_log_append(std::uint64_t logger, std::uint64_t line,
                     std::uint64_t end);
  void on_log_flush(std::uint64_t logger, std::uint64_t durable);
  void on_log_reset(std::uint64_t logger);
  /// `gate_observed`: the caller checked the logger's durable watermark
  /// (acquire load >= `end`) on this thread before the write-back; recorded
  /// as kFlagGateObserved for the offline happens-before analysis.
  void on_writeback(std::uint64_t line, std::uint64_t logger,
                    std::uint64_t end, bool gate_observed = false);
  /// Fork-join bracketing of a parallel section (one token per section):
  /// dispatch before handing work out, begin/end inside each slice, join
  /// after all slices completed. Offline-analysis material only.
  void on_task_dispatch(std::uint64_t token);
  void on_task_begin(std::uint64_t token);
  void on_task_end(std::uint64_t token);
  void on_task_join(std::uint64_t token);
  void on_epoch_seal(std::uint64_t epoch);
  void on_epoch_commit(std::uint64_t epoch);
  void on_pull_invoke(std::uint64_t line);
  void on_sync_push(std::uint64_t line);
  void on_sync_batch_ok();
  void on_sync_batch_fail();
  void on_digest_apply(std::uint64_t line);
  /// Pipelined persist_async sealed a dirty-set snapshot: one kPipelineSeal
  /// followed by one kPipelinePage per captured page (`page_lines` holds
  /// each page's first pool line).
  void on_pipeline_seal(std::uint64_t epoch,
                        std::span<const std::uint64_t> page_lines);
  void on_lock_acquire(LockClass cls, std::uint32_t id, bool shared);
  void on_lock_release(LockClass cls, std::uint32_t id);

  /// Drains every ring, replays pending events, and snapshots the findings.
  /// Call from a quiesced point; emissions racing this call surface in the
  /// next one.
  Report report();

  /// Feeds pre-recorded events (a decoded .paxevt trace, or a truncated
  /// recorded stream) through the rule engines verbatim — seq and tid are
  /// preserved, and the internal sequence counter is advanced past the
  /// replayed ticket range so live events emitted afterwards (crash,
  /// recovery) order after the trace. Returns the cumulative report.
  Report replay(std::span<const Event> events);

  /// Copy of every event processed so far, in engine order. Populated only
  /// when CheckerOptions::record_events is set; settles first.
  std::vector<Event> recorded_events();

  const CheckerOptions& options() const { return options_; }

 private:
  struct Ring;
  struct LineState;

  void emit(Event e);
  Ring* ring_for_this_thread();
  void drain_ring_locked(Ring* ring);
  void settle_locked();
  Report snapshot_report_locked() const;
  void process(const Event& e);
  void process_lock_acquire(const Event& e);
  LineState& line_state(std::uint64_t line);
  LineState* find_line(std::uint64_t line);
  void rehash_lines();
  void add_violation(Rule rule, const Event& e, std::uint64_t dedup_key,
                     std::string detail);

  const CheckerOptions options_;
  const std::uint64_t gen_;  // distinguishes checker instances in TLS
  // Own cache line: every emit RMWs this; keep it off the read-mostly
  // fields above (gen_ is read on the emit fast path).
  alignas(64) std::atomic<std::uint64_t> seq_{0};

  // Thread ring registry; rings are owned here and never removed (a
  // finished thread's ring just stays drained).
  std::mutex rings_mu_;
  std::unordered_map<std::thread::id, Ring*> ring_by_thread_;
  std::vector<std::unique_ptr<Ring>> rings_;

  // Engine state; engine_mu_ serializes draining + replay. Per-line state
  // lives in an open-addressed table of 16-byte slots (one cache-friendly
  // probe per line event, no allocation once warm) with a pending counter
  // so clean epoch commits never scan it; in-flight batch membership is a
  // per-thread line list; backtraces are mined from a global recent-event
  // ring (sequential writes) only when a violation actually fires.
  std::mutex engine_mu_;
  std::vector<Event> staged_;  // drained but not yet replayed
  std::vector<LineState> line_slots_;  // power-of-2 open addressing
  std::size_t line_count_ = 0;
  std::uint64_t pending_count_ = 0;  // lines stored but not flushed
  std::vector<std::vector<std::uint64_t>> pushed_by_tid_;
  std::vector<Event> recent_;  // power-of-2 ring of replayed events
  std::uint64_t recent_pos_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> log_durable_;
  // Epoch-pipeline FIFO: runtime-sealed snapshots awaiting their device
  // commit, oldest first. Page keys are pool-line-index >> 6 (pages are
  // line-aligned). Cleared on kCrash like the rest of the in-flight state.
  struct PipelineEpoch {
    std::uint64_t epoch = 0;
    std::set<std::uint64_t> pages;
  };
  std::vector<PipelineEpoch> pipeline_fifo_;
  std::unordered_map<std::uint16_t, std::vector<Event>> lock_stacks_;
  std::uint64_t flushes_since_drain_ = 0;
  std::set<std::pair<std::uint8_t, std::uint64_t>> reported_;
  std::vector<Violation> violations_;
  CheckDiagnostics diag_;
  std::vector<Event> recorded_;  // engine-order copy (record_events only)
};

}  // namespace pax::check
