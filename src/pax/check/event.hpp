// Typed events for the PaxCheck analysis subsystem (docs/ANALYSIS.md).
//
// Every persistence-relevant action in the stack — PM stores/flushes/drains,
// undo-log appends/flushes/resets, device write-backs, epoch seals/commits,
// the libpax sync batching, and lock acquisitions — is describable as one
// fixed-size Event. Components emit events through pax::check::Checker (an
// opt-in pointer on PmemDevice); the rule engines in checker.hpp replay the
// totally-ordered stream against the persist-order and lock-discipline
// models. Events are plain data so a per-thread ring can hold them without
// allocation.
#pragma once

#include <cstdint>
#include <string>

#include "pax/common/types.hpp"

namespace pax::check {

enum class EventType : std::uint8_t {
  // PmemDevice data/persistence path.
  kStore,        // line := line written into the pending overlay
  kFlush,        // line := CLWB'd; flag kFlagEmptyFlush if nothing pending
  kDrain,        // SFENCE ordering point
  kCrash,        // simulated power loss (pending overlay resolved + cleared)
  // Undo logger (one logger instance per bank).
  kLogAppend,    // line, a := logger id, b := record end offset
  kLogFlush,     // a := logger id, b := new durable watermark
  kLogReset,     // a := logger id (bank reclaimed after its epoch committed)
  // PAX device.
  kWriteback,    // line written to PM media; a := logger id, b := record end
  kEpochSeal,    // a := sealed epoch number (§6 non-blocking persist)
  kEpochCommit,  // a := epoch number; emitted just before the epoch-cell
                 // store, so the cell's own store/flush/drain follow it
  kPullInvoke,   // line := host pull (RdShared) about to be invoked
  // libpax host sync path.
  kSyncPush,      // line queued into a sync_lines batch
  kSyncBatchOk,   // the emitting thread's in-flight batch succeeded
  kSyncBatchFail, // ... or failed (nothing from it reached the device)
  kDigestApply,   // line's tracked digest advanced to the captured value
  // Lock discipline.
  kLockAcquire,  // a := LockClass, b := instance id; flag kFlagSharedLock
  kLockRelease,  // a := LockClass, b := instance id
  // Epoch pipeline (appended so existing .paxevt traces stay decodable and
  // crash-point numbering is unchanged — none of these is crash-countable).
  kPipelineSeal,  // runtime sealed a dirty-set snapshot; a := epoch,
                  // b := snapshotted page count
  kPipelinePage,  // one page of that snapshot; line := the page's first
                  // pool line, a := epoch
  // Fork/join (trace v2; not crash-countable). The PAX device brackets each
  // parallel persist fan-out with these so the offline happens-before
  // analysis (analyze.hpp) sees the pool's synchronization: dispatch
  // happens-before every begin of the same token, and every end
  // happens-before the join. a := fork token, unique per parallel section.
  kTaskDispatch,  // coordinator announces a parallel section
  kTaskBegin,     // a worker (or the coordinator itself) starts a slice
  kTaskEnd,       // that slice finished
  kTaskJoin,      // coordinator observed all slices complete
};

/// Lock classes in their required acquisition order (LOCK ORDER comment in
/// pax_device.hpp, plus the libpax sync mutex that sits above it all).
/// Rank grows inward: holding a higher rank while acquiring a lower one is
/// an order inversion.
enum class LockClass : std::uint8_t {
  kSyncMu = 0,     // libpax runtime sync path serialization
  kEpochGate = 1,  // PaxDevice epoch_mu_ (shared_mutex)
  kStripe = 2,     // one PaxDevice stripe mutex (id = stripe index)
  kLogMu = 3,      // PaxDevice log_mu_
};

inline constexpr std::uint8_t kFlagEmptyFlush = 1u << 0;
inline constexpr std::uint8_t kFlagSharedLock = 1u << 1;
/// On kWriteback (trace v2): the emitting thread checked the logger's
/// durable watermark (an acquire load that returned >= the record end)
/// before writing the line back. The offline analyzer turns this into a
/// happens-before edge from the covering kLogFlush, mirroring the real
/// synchronization through UndoLogger's atomic watermark.
inline constexpr std::uint8_t kFlagGateObserved = 1u << 2;

/// Sentinel for events that are not about a particular line.
inline constexpr std::uint64_t kNoLine = ~0ull;

struct Event {
  std::uint64_t seq = 0;      // global order (per-checker atomic counter)
  std::uint64_t line = kNoLine;
  std::uint64_t a = 0;        // type-specific (see EventType comments)
  std::uint64_t b = 0;
  EventType type = EventType::kStore;
  std::uint8_t flags = 0;
  std::uint16_t tid = 0;      // ring id of the emitting thread
};

const char* event_type_name(EventType t);
const char* lock_class_name(LockClass c);

/// "class #instance" label for one end of a lock edge, e.g. "stripe #5" or
/// "log-mu #1". Online violations and the offline lock-graph report use the
/// same spelling so the two read identically.
std::string describe_lock(LockClass cls, std::uint64_t id);

/// True for the event types PmemDevice counts toward crash_events(): the
/// device-level persistence actions a crash point is named after. Exactly
/// one such event is emitted per counter increment, which lets the crash
/// explorer cut a recorded stream at the device's "crash after event N"
/// boundary (crashpoint.hpp).
inline constexpr bool is_crash_countable(EventType t) {
  return t == EventType::kStore || t == EventType::kFlush ||
         t == EventType::kDrain;
}

}  // namespace pax::check
