// Automated flush/fence repair: from PaxScope findings to a validated fix.
//
// advise_repairs() turns the persist-order findings of an AnalysisReport
// (analyze.hpp) into a minimal RepairPlan of two action kinds:
//
//   kInsertFlushBeforeCommit — a line was dirty (or un-fenced) at an epoch
//     commit: flush it, then drain, immediately before that epoch's commit
//     note. Derived from kCommitWindow findings.
//
//   kHoistLogFlush — data became (or could become) durable ahead of the
//     undo record that rolls it back: force the covering region of the log
//     extent durable immediately before any flush/write-back of the line.
//     Derived from kUndoFlushWindow and kWritebackWindow findings.
//
// RepairShim executes a plan mechanically through the device's
// PmemRepairShim interception points (pmem_device.hpp) — no workload edit,
// no recompile. The shim is stateless across executions (standing rules,
// applied on every matching callback), so a repaired workload still meets
// the CrashExplorer determinism contract and can be re-validated under full
// crash-point enumeration: validate_repair() explores the scenario without
// the shim (expecting findings) and with it (expecting clean), and reports
// whether the verdict flipped.
//
// The seeded scenarios double as the acceptance demo and regression
// fixtures: "undo-flush" delays the undo-log flush until after the data
// flush — silent online (no rule fires on the observed order), caught by
// PaxScope's HB pass, repaired by hoisting the log flush; "missing-flush"
// never flushes one data line before commit — repaired by inserting
// flush+drain ahead of the commit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pax/check/analyze.hpp"
#include "pax/check/crashpoint.hpp"
#include "pax/common/status.hpp"
#include "pax/common/types.hpp"
#include "pax/pmem/pmem_device.hpp"

namespace pax::check {

enum class RepairActionKind : std::uint8_t {
  kInsertFlushBeforeCommit,  // flush `line` + drain before commit of `epoch`
  kHoistLogFlush,  // flush log [logger, logger+log_end) + drain before any
                   // flush of `line`
};

const char* repair_action_kind_name(RepairActionKind k);

struct RepairAction {
  RepairActionKind kind = RepairActionKind::kInsertFlushBeforeCommit;
  std::uint64_t line = kNoLine;
  std::uint64_t epoch = 0;    // kInsertFlushBeforeCommit
  std::uint64_t logger = 0;   // kHoistLogFlush: log extent offset
  std::uint64_t log_end = 0;  // kHoistLogFlush: bytes of the extent to force
  std::uint64_t at_seq = 0;   // trace event that motivated the action

  std::string to_string() const;
};

struct RepairPlan {
  std::vector<RepairAction> actions;

  bool empty() const { return actions.empty(); }
  std::string to_string() const;
  std::string to_json() const;
};

/// Minimal plan for the persist-order findings of `report`: one insert per
/// (epoch, line) commit window, one hoist per line with the largest undo
/// record end seen for it. Lock findings have no mechanical repair and are
/// ignored here.
RepairPlan advise_repairs(const AnalysisReport& report);

/// Executes a RepairPlan through the device interception points. Attach
/// with PmemDevice::set_repair_shim inside the workload; the shim holds no
/// per-execution state, so the same instance serves every crash-point
/// re-execution unchanged.
class RepairShim final : public pmem::PmemRepairShim {
 public:
  explicit RepairShim(const RepairPlan& plan);

  void before_epoch_commit(pmem::PmemDevice& dev,
                           std::uint64_t epoch) override;
  void before_flush(pmem::PmemDevice& dev, LineIndex line) override;

  /// Total interception-point firings that executed at least one action.
  std::uint64_t activations() const {
    return activations_.load(std::memory_order_relaxed);
  }

 private:
  struct Hoist {
    std::uint64_t logger = 0;
    std::uint64_t log_end = 0;
  };
  // epoch → lines to flush (then one drain) before that commit.
  std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>>
      insert_by_epoch_;
  // line → log region to force durable before any flush of the line.
  std::vector<std::pair<std::uint64_t, Hoist>> hoist_by_line_;
  std::atomic<std::uint64_t> activations_{0};
};

/// A deterministic seeded workload for the repair pipeline. `buggy` builds
/// the broken variant (the repair target); the clean twin is the same
/// workload with the ordering edge restored, used by tests to pin down that
/// the analyzer's finding is the bug and nothing else.
struct RepairScenario {
  std::string name;
  std::string description;
  std::size_t device_bytes = 0;
  CrashExplorer::Workload workload;
};

/// Scenarios by name: "undo-flush" (online-silent, HB-detected) and
/// "missing-flush" (commit window). `buggy` = false yields the clean twin.
Result<RepairScenario> seeded_repair_scenario(const std::string& name,
                                              bool buggy = true);

/// One crash-free recorded execution of the scenario: the .paxevt material
/// PaxScope analyzes to derive the plan.
Result<std::vector<Event>> record_scenario_trace(const RepairScenario& s);

struct RepairValidation {
  ExplorationResult before;  // exploration without the shim
  ExplorationResult after;   // exploration with the plan applied
  std::uint64_t activations = 0;

  /// The acceptance bar: broken before, clean after.
  bool flipped_clean() const { return !before.clean() && after.clean(); }
  std::string to_string() const;
};

/// Full loop: explore the scenario as-is, then re-explore with `plan`
/// applied through a RepairShim, under the same explorer options.
Result<RepairValidation> validate_repair(const RepairScenario& scenario,
                                         const RepairPlan& plan,
                                         CrashExplorerOptions options = {});

}  // namespace pax::check
