#include "pax/check/analyze.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace pax::check {
namespace {

// Vector clock indexed by tid. Traces are small-tid (ring ids), so a dense
// vector beats a map; clocks grow lazily to the highest tid seen.
using Vc = std::vector<std::uint32_t>;

void vc_join(Vc& into, const Vc& other) {
  if (other.size() > into.size()) into.resize(other.size(), 0);
  for (std::size_t i = 0; i < other.size(); ++i) {
    into[i] = std::max(into[i], other[i]);
  }
}

// Did the event with clock value `idx` on thread `tid` happen-before the
// point whose clock is `at`? (Reflexive: an event HB-reaches itself.)
bool vc_covers(const Vc& at, std::uint16_t tid, std::uint32_t idx) {
  return tid < at.size() && at[tid] >= idx;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Lock-graph node: (LockClass, instance id) packed into one key.
std::uint64_t lock_node(std::uint8_t cls, std::uint64_t id) {
  return (static_cast<std::uint64_t>(cls) << 32) | (id & 0xffffffffull);
}

std::string lock_node_name(std::uint64_t node) {
  return describe_lock(static_cast<LockClass>(node >> 32),
                       node & 0xffffffffull);
}

}  // namespace

const char* finding_kind_name(FindingKind k) {
  switch (k) {
    case FindingKind::kLockCycle: return "lock-cycle";
    case FindingKind::kLockRankViolation: return "lock-rank-violation";
    case FindingKind::kCommitWindow: return "commit-window";
    case FindingKind::kWritebackWindow: return "writeback-window";
    case FindingKind::kUndoFlushWindow: return "undo-flush-window";
    case FindingKind::kOnlineViolation: return "online-violation";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << "[" << finding_kind_name(kind) << "] trace " << trace_index;
  if (seq != 0) os << " seq " << seq;
  os << ": " << detail;
  return os.str();
}

std::size_t AnalysisReport::count(FindingKind k) const {
  std::size_t n = 0;
  for (const auto& f : findings) {
    if (f.kind == k) ++n;
  }
  return n;
}

std::string AnalysisReport::to_string() const {
  std::ostringstream os;
  os << "paxscope: " << traces << " trace(s), " << stats.events
     << " events, " << stats.total_edges() << " hb edges ("
     << stats.program_edges << " program, " << stats.lock_edges << " lock, "
     << stats.gate_edges << " gate, " << stats.fork_join_edges
     << " fork-join, " << stats.batch_edges << " batch, "
     << stats.pipeline_edges << " pipeline)\n";
  if (findings.empty()) {
    os << "paxscope: clean — no predictive findings\n";
  } else {
    os << "paxscope: " << findings.size() << " finding(s)\n";
    for (const auto& f : findings) {
      os << "  " << f.to_string() << "\n";
    }
  }
  return os.str();
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"traces\":" << traces << ",\"events\":" << stats.events
     << ",\"hb_edges\":{\"total\":" << stats.total_edges()
     << ",\"program\":" << stats.program_edges
     << ",\"lock\":" << stats.lock_edges << ",\"gate\":" << stats.gate_edges
     << ",\"fork_join\":" << stats.fork_join_edges
     << ",\"batch\":" << stats.batch_edges
     << ",\"pipeline\":" << stats.pipeline_edges << "}"
     << ",\"clean\":" << (clean() ? "true" : "false") << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) os << ",";
    os << "{\"kind\":\"" << finding_kind_name(f.kind) << "\",\"detail\":\""
       << json_escape(f.detail) << "\",\"trace\":" << f.trace_index
       << ",\"seq\":" << f.seq << ",\"line\":";
    if (f.line == kNoLine) {
      os << "null";
    } else {
      os << f.line;
    }
    os << ",\"epoch\":" << f.epoch << ",\"logger\":" << f.logger
       << ",\"log_end\":" << f.log_end << "}";
  }
  os << "]}";
  return os.str();
}

namespace internal {

// Aggregated lock graph. One node per (LockClass, instance); one directed
// edge per observed held→acquired pair, with the first observation kept as
// the diagnostic sample. Lives across add_trace calls.
struct LockGraph {
  struct EdgeInfo {
    std::uint64_t count = 0;
    std::size_t first_trace = 0;
    std::uint64_t first_seq = 0;
  };
  // Ordered map so reports are deterministic across runs.
  std::map<std::pair<std::uint64_t, std::uint64_t>, EdgeInfo> edges;

  void add_edge(std::uint64_t src, std::uint64_t dst, std::size_t trace,
                std::uint64_t seq) {
    if (src == dst) return;  // re-entry is the online checker's department
    EdgeInfo& info = edges[{src, dst}];
    if (info.count == 0) {
      info.first_trace = trace;
      info.first_seq = seq;
    }
    ++info.count;
  }
};

}  // namespace internal

namespace {

// Tarjan strongly-connected components over the aggregated lock graph.
// Graphs are tiny (a handful of lock instances), so clarity over speed.
struct SccFinder {
  const std::map<std::pair<std::uint64_t, std::uint64_t>,
                 internal::LockGraph::EdgeInfo>& edges;
  std::map<std::uint64_t, std::vector<std::uint64_t>> adj;
  std::map<std::uint64_t, int> index, lowlink;
  std::map<std::uint64_t, bool> on_stack;
  std::vector<std::uint64_t> stack;
  int next_index = 0;
  std::vector<std::vector<std::uint64_t>> sccs;

  explicit SccFinder(
      const std::map<std::pair<std::uint64_t, std::uint64_t>,
                     internal::LockGraph::EdgeInfo>& e)
      : edges(e) {
    for (const auto& [key, info] : edges) {
      adj[key.first].push_back(key.second);
      adj[key.second];  // ensure the sink exists as a node
    }
  }

  void run() {
    for (const auto& [node, _] : adj) {
      if (index.find(node) == index.end()) strongconnect(node);
    }
  }

  void strongconnect(std::uint64_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (std::uint64_t w : adj[v]) {
      if (index.find(w) == index.end()) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<std::uint64_t> scc;
      for (;;) {
        std::uint64_t w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) break;
      }
      if (scc.size() > 1) sccs.push_back(std::move(scc));
    }
  }
};

// ---- Per-trace happens-before pass -------------------------------------

struct HeldLock {
  std::uint8_t cls = 0;
  std::uint64_t id = 0;
  bool shared = false;
};

// Release history of one lock instance. An exclusive acquire ordered after
// every prior critical section joins the accumulated clock; a shared
// acquire is ordered only after the last exclusive section (concurrent
// readers don't order each other).
struct LockHistory {
  Vc all_releases;
  Vc last_exclusive;
  bool any_release = false;
  bool any_exclusive = false;
};

// One kLogFlush: the logger's durable watermark and the flushing point's
// clock, for gate edges and undo-coverage queries.
struct FlushMark {
  std::uint64_t durable = 0;
  std::uint64_t seq = 0;
  std::uint16_t tid = 0;
  std::uint32_t idx = 0;  // clock value of the flush on its own thread
  Vc vc;
};

struct DrainMark {
  std::uint16_t tid = 0;
  std::uint32_t idx = 0;
  Vc vc;
};

// Persist-order state of one data line within the current epoch.
struct LineWindow {
  bool stored = false;
  bool flushed = false;  // non-empty flush after the last store
  std::uint64_t store_seq = 0;
  std::uint64_t flush_seq = 0;
  std::uint16_t flush_tid = 0;
  std::uint32_t flush_idx = 0;
  // Outstanding undo record staged for this line (kLogAppend with no
  // HB-ordered covering kLogFlush yet).
  bool has_append = false;
  std::uint64_t append_logger = 0;
  std::uint64_t append_end = 0;
  std::uint64_t append_seq = 0;
};

struct TracePass {
  std::size_t trace_index;
  bool hb_strict;  // v2+: gate flags and fork/join brackets are present
  const AnalysisOptions& options;
  HbStats& stats;
  std::vector<Finding>& findings;
  internal::LockGraph* lock_graph;

  std::vector<Vc> clock;                 // per tid
  std::vector<bool> tid_seen;
  std::vector<std::vector<HeldLock>> held;  // per tid lock stack
  std::vector<std::uint32_t> pushes_in_flight;  // per tid, for batch edges
  std::unordered_map<std::uint64_t, LockHistory> locks;
  std::unordered_map<std::uint64_t, std::vector<FlushMark>> log_flushes;
  std::unordered_map<std::uint64_t, std::pair<Vc, Vc>> tasks;  // dispatch, join-acc
  std::unordered_map<std::uint64_t, Vc> pipeline_seal;  // epoch → seal clock
  std::unordered_map<std::uint64_t, LineWindow> lines;
  std::vector<std::uint64_t> epoch_lines;  // lines touched since last commit
  std::vector<DrainMark> drains;           // since last commit
  std::set<std::pair<std::uint64_t, std::uint64_t>> reported_windows;

  TracePass(std::size_t trace, bool strict, const AnalysisOptions& opts,
            HbStats& s, std::vector<Finding>& f,
            internal::LockGraph* graph)
      : trace_index(trace),
        hb_strict(strict),
        options(opts),
        stats(s),
        findings(f),
        lock_graph(graph) {}

  void ensure_tid(std::uint16_t tid) {
    if (tid >= clock.size()) {
      clock.resize(tid + 1);
      tid_seen.resize(tid + 1, false);
      held.resize(tid + 1);
      pushes_in_flight.resize(tid + 1, 0);
    }
    if (tid >= clock[tid].size()) clock[tid].resize(tid + 1, 0);
  }

  Finding& add_finding(FindingKind kind, const Event& e, std::string detail) {
    Finding f;
    f.kind = kind;
    f.detail = std::move(detail);
    f.trace_index = trace_index;
    f.seq = e.seq;
    f.line = e.line;
    findings.push_back(std::move(f));
    return findings.back();
  }

  LineWindow& line(std::uint64_t l) { return lines[l]; }

  void track_epoch_line(std::uint64_t l) {
    if (std::find(epoch_lines.begin(), epoch_lines.end(), l) ==
        epoch_lines.end()) {
      epoch_lines.push_back(l);
    }
  }

  void process(const Event& e) {
    ensure_tid(e.tid);
    Vc& vc = clock[e.tid];
    ++vc[e.tid];
    if (tid_seen[e.tid]) {
      ++stats.program_edges;
    } else {
      tid_seen[e.tid] = true;
    }
    ++stats.events;

    switch (e.type) {
      case EventType::kLockAcquire: handle_lock_acquire(e, vc); break;
      case EventType::kLockRelease: handle_lock_release(e, vc); break;
      case EventType::kTaskDispatch: {
        auto& t = tasks[e.a];
        t.first = vc;
        break;
      }
      case EventType::kTaskBegin: {
        auto it = tasks.find(e.a);
        if (it != tasks.end()) {
          vc_join(vc, it->second.first);
          ++stats.fork_join_edges;
        }
        break;
      }
      case EventType::kTaskEnd: {
        auto it = tasks.find(e.a);
        if (it != tasks.end()) {
          vc_join(it->second.second, vc);
          ++stats.fork_join_edges;
        }
        break;
      }
      case EventType::kTaskJoin: {
        auto it = tasks.find(e.a);
        if (it != tasks.end()) {
          vc_join(vc, it->second.second);
          tasks.erase(it);
        }
        break;
      }
      case EventType::kSyncPush:
        ++pushes_in_flight[e.tid];
        break;
      case EventType::kSyncBatchOk:
      case EventType::kSyncBatchFail:
        // Push → outcome edges are program-order today (the pushing thread
        // observes its own batch outcome); counted so the stats reflect the
        // dependency even though the join is a no-op.
        stats.batch_edges += pushes_in_flight[e.tid];
        pushes_in_flight[e.tid] = 0;
        break;
      case EventType::kPipelineSeal:
        pipeline_seal[e.a] = vc;
        break;
      case EventType::kEpochSeal: {
        auto it = pipeline_seal.find(e.a);
        if (it != pipeline_seal.end()) {
          vc_join(vc, it->second);
          it->second = vc;  // seal point now carries runtime + device order
          ++stats.pipeline_edges;
        }
        break;
      }
      case EventType::kStore:
        if (options.persist_order && e.line != kNoLine) {
          LineWindow& w = line(e.line);
          w.stored = true;
          w.flushed = false;
          w.store_seq = e.seq;
          track_epoch_line(e.line);
        }
        break;
      case EventType::kFlush:
        if (options.persist_order && e.line != kNoLine &&
            (e.flags & kFlagEmptyFlush) == 0) {
          handle_data_flush(e, vc);
        }
        break;
      case EventType::kDrain:
        if (options.persist_order) {
          drains.push_back({e.tid, vc[e.tid], vc});
        }
        break;
      case EventType::kLogAppend:
        if (options.persist_order && e.line != kNoLine) {
          LineWindow& w = line(e.line);
          w.has_append = true;
          w.append_logger = e.a;
          w.append_end = e.b;
          w.append_seq = e.seq;
          track_epoch_line(e.line);
        }
        break;
      case EventType::kLogFlush: {
        auto& marks = log_flushes[e.a];
        marks.push_back({e.b, e.seq, e.tid, vc[e.tid], vc});
        break;
      }
      case EventType::kLogReset:
        log_flushes.erase(e.a);
        for (auto& [l, w] : lines) {
          if (w.has_append && w.append_logger == e.a) w.has_append = false;
        }
        break;
      case EventType::kWriteback:
        handle_writeback(e, vc);
        break;
      case EventType::kEpochCommit: {
        auto it = pipeline_seal.find(e.a);
        if (it != pipeline_seal.end()) {
          vc_join(vc, it->second);
          pipeline_seal.erase(it);
          ++stats.pipeline_edges;
        }
        if (options.persist_order) handle_commit(e, vc);
        break;
      }
      case EventType::kCrash:
        // Power loss: in-flight persist state is void. Locks and thread
        // clocks survive — the threads themselves did not restart.
        lines.clear();
        epoch_lines.clear();
        drains.clear();
        tasks.clear();
        pipeline_seal.clear();
        break;
      case EventType::kPullInvoke:
      case EventType::kDigestApply:
      case EventType::kPipelinePage:
        break;
    }
  }

  void handle_lock_acquire(const Event& e, Vc& vc) {
    const auto cls = static_cast<std::uint8_t>(e.a);
    const bool shared = (e.flags & kFlagSharedLock) != 0;
    LockHistory& h = locks[lock_node(cls, e.b)];
    if (shared) {
      if (h.any_exclusive) {
        vc_join(vc, h.last_exclusive);
        ++stats.lock_edges;
      }
    } else if (h.any_release) {
      vc_join(vc, h.all_releases);
      ++stats.lock_edges;
    }
    if (options.lock_graph && lock_graph != nullptr) {
      const std::uint64_t dst = lock_node(cls, e.b);
      for (const HeldLock& held_lock : held[e.tid]) {
        lock_graph->add_edge(lock_node(held_lock.cls, held_lock.id), dst,
                             trace_index, e.seq);
      }
    }
    held[e.tid].push_back({cls, e.b, shared});
  }

  void handle_lock_release(const Event& e, const Vc& vc) {
    const auto cls = static_cast<std::uint8_t>(e.a);
    bool shared = false;
    auto& stack = held[e.tid];
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->cls == cls && it->id == e.b) {
        shared = it->shared;
        stack.erase(std::next(it).base());
        break;
      }
    }
    LockHistory& h = locks[lock_node(cls, e.b)];
    vc_join(h.all_releases, vc);
    h.any_release = true;
    if (!shared) {
      h.last_exclusive = vc;
      h.any_exclusive = true;
    }
  }

  // A non-empty flush of a data line that still has an un-flushed undo
  // record staged: the flush makes the new data durable, so the record that
  // rolls it back must already be durable *and* ordered before this flush.
  void handle_data_flush(const Event& e, const Vc& vc) {
    LineWindow& w = line(e.line);
    if (w.has_append) {
      if (!undo_covered(w, vc, e.seq)) {
        if (reported_windows.insert({e.line, w.append_end}).second) {
          std::ostringstream os;
          os << "line " << e.line << " flushed (seq " << e.seq
             << ") while its undo record (logger " << w.append_logger
             << ", end " << w.append_end
             << ") has no happens-before-ordered durable log flush; a crash "
                "after this flush cannot roll the line back";
          Finding& f =
              add_finding(FindingKind::kUndoFlushWindow, e, os.str());
          f.logger = w.append_logger;
          f.log_end = w.append_end;
        }
      } else {
        w.has_append = false;  // covered; stop tracking this record
      }
    }
    w.flushed = true;
    w.flush_seq = e.seq;
    w.flush_tid = e.tid;
    w.flush_idx = vc[e.tid];
    track_epoch_line(e.line);
  }

  // Is there a kLogFlush of the record's logger whose durable watermark
  // covers `append_end` and that is ordered before the querying point?
  // v1 traces have no fork/join or gate material, so seq order is the best
  // available oracle there; v2 requires a real HB edge.
  bool undo_covered(const LineWindow& w, const Vc& at,
                    std::uint64_t at_seq) const {
    auto it = log_flushes.find(w.append_logger);
    if (it == log_flushes.end()) return false;
    for (const FlushMark& m : it->second) {
      if (m.durable < w.append_end || m.seq > at_seq) continue;
      if (!hb_strict || vc_covers(at, m.tid, m.idx)) return true;
    }
    return false;
  }

  void handle_writeback(const Event& e, Vc& vc) {
    if ((e.flags & kFlagGateObserved) != 0) {
      // The emitter observed the durable watermark: join the earliest
      // covering log flush (earliest is sound — later flushes of the same
      // logger are ordered after it by the log mutex, so transitively the
      // write-back is ordered after whichever flush actually published the
      // watermark it read).
      auto it = log_flushes.find(e.a);
      if (it != log_flushes.end()) {
        for (const FlushMark& m : it->second) {
          if (m.durable >= e.b) {
            vc_join(vc, m.vc);
            ++stats.gate_edges;
            break;
          }
        }
      }
      return;
    }
    if (!options.persist_order || !hb_strict || e.b == 0) return;
    // Ungated write-back with a real undo dependency: some covering log
    // flush must be HB-before it. If none exists at all the online rule
    // (kWritebackBeforeUndoDurable) already fires — only the predictive
    // case (covered in seq order but not in HB order) is new information.
    auto it = log_flushes.find(e.a);
    if (it == log_flushes.end()) return;
    bool any_covering = false;
    for (const FlushMark& m : it->second) {
      if (m.durable < e.b || m.seq > e.seq) continue;
      any_covering = true;
      if (vc_covers(vc, m.tid, m.idx)) return;  // properly ordered
    }
    if (!any_covering) return;
    if (reported_windows.insert({e.line, e.b}).second) {
      std::ostringstream os;
      os << "write-back of line " << e.line << " (seq " << e.seq
         << ") depends on undo record end " << e.b << " of logger " << e.a
         << "; a covering log flush exists in sequence order but no "
            "happens-before edge enforces it";
      Finding& f = add_finding(FindingKind::kWritebackWindow, e, os.str());
      f.logger = e.a;
      f.log_end = e.b;
    }
  }

  void handle_commit(const Event& e, const Vc& vc) {
    for (std::uint64_t l : epoch_lines) {
      auto it = lines.find(l);
      if (it == lines.end()) continue;
      const LineWindow& w = it->second;
      if (!w.stored) continue;
      if (!w.flushed) {
        std::ostringstream os;
        os << "line " << l << " stored (seq " << w.store_seq
           << ") but never flushed before commit of epoch " << e.a << " (seq "
           << e.seq << ")";
        Finding& f = add_finding(FindingKind::kCommitWindow, e, os.str());
        f.line = l;
        f.epoch = e.a;
        continue;
      }
      if (!hb_strict) continue;
      if (!vc_covers(vc, w.flush_tid, w.flush_idx)) {
        std::ostringstream os;
        os << "flush of line " << l << " (seq " << w.flush_seq
           << ") is not happens-before the commit of epoch " << e.a
           << " (seq " << e.seq
           << "); the commit could legally overtake the flush";
        Finding& f = add_finding(FindingKind::kCommitWindow, e, os.str());
        f.line = l;
        f.epoch = e.a;
        continue;
      }
      if (!drain_covers(w, vc)) {
        std::ostringstream os;
        os << "no drain orders the flush of line " << l << " (seq "
           << w.flush_seq << ") before the commit of epoch " << e.a
           << " (seq " << e.seq << "); the flush may still be in flight";
        Finding& f = add_finding(FindingKind::kCommitWindow, e, os.str());
        f.line = l;
        f.epoch = e.a;
      }
    }
    // The epoch boundary: lines dirtied afterwards belong to the next
    // window, and pre-commit drains cannot fence post-commit flushes.
    for (std::uint64_t l : epoch_lines) {
      auto it = lines.find(l);
      if (it != lines.end() && !it->second.has_append) lines.erase(it);
      else if (it != lines.end()) it->second.stored = false;
    }
    epoch_lines.clear();
    drains.clear();
  }

  // Some drain must be ordered after the flush and before the commit.
  bool drain_covers(const LineWindow& w, const Vc& commit_vc) const {
    for (const DrainMark& d : drains) {
      if (vc_covers(d.vc, w.flush_tid, w.flush_idx) &&
          vc_covers(commit_vc, d.tid, d.idx)) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

TraceAnalyzer::TraceAnalyzer(AnalysisOptions options)
    : options_(options), lock_graph_(std::make_unique<internal::LockGraph>()) {}

TraceAnalyzer::~TraceAnalyzer() = default;

Status TraceAnalyzer::add_trace(std::span<const Event> events,
                                std::uint32_t version) {
  if (version == 0 || version > kTraceVersion) {
    return invalid_argument("paxscope: unsupported trace version " +
                            std::to_string(version));
  }
  const std::size_t trace_index = traces_++;
  TracePass pass(trace_index, /*strict=*/version >= 2, options_, stats_,
                 findings_, options_.lock_graph ? lock_graph_.get() : nullptr);
  std::uint64_t prev_seq = 0;
  for (const Event& e : events) {
    if (e.seq < prev_seq) {
      return invalid_argument(
          "paxscope: trace is not in sequence order (seq " +
          std::to_string(e.seq) + " after " + std::to_string(prev_seq) + ")");
    }
    prev_seq = e.seq;
    pass.process(e);
  }
  if (options_.online_replay) {
    Checker checker;
    Report report = checker.replay(events);
    for (const Violation& v : report.violations) {
      Finding f;
      f.kind = FindingKind::kOnlineViolation;
      f.detail = std::string(rule_name(v.rule)) + ": " + v.detail;
      f.trace_index = trace_index;
      f.seq = v.backtrace.empty() ? 0 : v.backtrace.back().seq;
      f.line = v.line;
      findings_.push_back(std::move(f));
    }
  }
  return Status::ok();
}

AnalysisReport TraceAnalyzer::finish() {
  AnalysisReport report;
  report.findings = std::move(findings_);
  findings_.clear();
  report.stats = stats_;
  report.traces = traces_;
  if (options_.lock_graph) {
    // Rank pass: any aggregated edge from a higher rank to a lower one is
    // against the documented order, even if no single run blocked on it.
    for (const auto& [key, info] : lock_graph_->edges) {
      const std::uint64_t src_cls = key.first >> 32;
      const std::uint64_t dst_cls = key.second >> 32;
      if (src_cls > dst_cls) {
        Finding f;
        f.kind = FindingKind::kLockRankViolation;
        f.trace_index = info.first_trace;
        f.seq = info.first_seq;
        f.detail = "aggregated lock edge " + lock_node_name(key.first) +
                   " -> " + lock_node_name(key.second) +
                   " acquires against the documented order (seen " +
                   std::to_string(info.count) + "x, first at trace " +
                   std::to_string(info.first_trace) + " seq " +
                   std::to_string(info.first_seq) + ")";
        report.findings.push_back(std::move(f));
      }
    }
    // Cycle pass: strongly connected components of size > 1 are potential
    // deadlocks — even same-rank, same-class ones the online checker can
    // never flag, and even when the two halves of the inversion came from
    // different runs.
    SccFinder finder(lock_graph_->edges);
    finder.run();
    for (const auto& scc : finder.sccs) {
      std::set<std::uint64_t> members(scc.begin(), scc.end());
      std::ostringstream os;
      os << "potential deadlock cycle over " << scc.size() << " locks:";
      std::size_t first_trace = 0;
      std::uint64_t first_seq = 0;
      bool first = true;
      for (const auto& [key, info] : lock_graph_->edges) {
        if (members.count(key.first) == 0 || members.count(key.second) == 0) {
          continue;
        }
        os << " " << lock_node_name(key.first) << " -> "
           << lock_node_name(key.second) << " (trace "
           << info.first_trace << ", seq " << info.first_seq << ");";
        if (first) {
          first_trace = info.first_trace;
          first_seq = info.first_seq;
          first = false;
        }
      }
      os << " no single run blocked, but the orders compose into a cycle";
      Finding f;
      f.kind = FindingKind::kLockCycle;
      f.trace_index = first_trace;
      f.seq = first_seq;
      f.detail = os.str();
      report.findings.push_back(std::move(f));
    }
  }
  // Severity order: cycles and rank problems first, then persist windows,
  // then what the online engine already knew.
  std::stable_sort(report.findings.begin(), report.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.kind) <
                            static_cast<int>(b.kind);
                   });
  return report;
}

Result<AnalysisReport> analyze_trace_files(std::span<const std::string> paths,
                                           AnalysisOptions options) {
  TraceAnalyzer analyzer(options);
  for (const std::string& path : paths) {
    auto trace = read_trace_versioned(path);
    if (!trace.ok()) return trace.status();
    PAX_RETURN_IF_ERROR(
        analyzer.add_trace(trace.value().events, trace.value().version));
  }
  return analyzer.finish();
}

}  // namespace pax::check
