// PaxScope: offline predictive analysis over recorded .paxevt traces.
//
// The online checker (checker.hpp) judges the one schedule it observed: a
// run is clean if no rule fired on that interleaving. PaxScope re-reads a
// recorded event stream and asks the stronger question — was the ordering
// the rules depended on *enforced*, or merely lucky? It reconstructs a
// happens-before (HB) relation from the synchronization that is actually
// visible in the trace and re-checks every durability dependency against
// it. Two passes come out of that graph:
//
//   Lock-graph pass (lockdep-style). Every "acquired B while holding A"
//   observation becomes a directed edge (LockClass, instance) → (LockClass,
//   instance), aggregated across one or many traces. A cycle in that graph
//   is a potential deadlock even if no single run ever blocked — the
//   classic ABBA that the online rank check cannot see when both locks
//   share a class (two stripes of different devices, two log mutexes, two
//   runtimes' sync mutexes). Rank violations are reported from the same
//   aggregated graph.
//
//   Predictive persist-order pass. For each durability dependency the
//   online rules check by sequence number alone, PaxScope requires an HB
//   edge:
//     * kEpochCommit must be HB-after the kFlush of every line dirtied in
//       the epoch, with a kDrain HB-between flush and commit;
//     * a kWriteback without the gate flag must be HB-after a kLogFlush
//       whose durable watermark covers its undo record;
//     * a kFlush of a data line with an outstanding kLogAppend (an undo
//       record staged but with no HB-ordered covering kLogFlush) is the
//       raw-WAL form of the same bug: the data can become durable while
//       the record that rolls it back is still in caches.
//   A window where the observed seq order was safe but no HB edge enforces
//   it is feasible under some legal reordering — reported even though the
//   online checker stayed silent.
//
// HB edge vocabulary (one forward pass, vector clocks per thread):
//   program order        — per tid;
//   lock release→acquire — per (LockClass, instance); rwlock-aware: an
//                          exclusive acquire joins every prior release, a
//                          shared acquire joins only the last exclusive
//                          release (shared holders don't order each other);
//   gate observation     — a kWriteback carrying kFlagGateObserved joins
//                          the earliest kLogFlush whose durable watermark
//                          covers its record (the emitter's acquire load of
//                          the watermark is real synchronization, and log
//                          flushes are ordered by the log mutex);
//   fork/join            — kTaskDispatch → every kTaskBegin of the token,
//                          every kTaskEnd → the token's kTaskJoin;
//   batch                — kSyncPush → the same thread's batch outcome
//                          (subsumed by program order today, kept explicit
//                          for stats and future cross-thread batches);
//   pipeline             — kPipelineSeal(e) → kEpochSeal(e) →
//                          kEpochCommit(e).
//
// Traces recorded before format v2 (trace_file.hpp) lack the gate flag and
// the fork/join brackets, so their fan-out writebacks would all look
// unordered; for those the persist-order pass falls back to the online
// (sequence-order) interpretation instead of reporting false windows.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pax/check/checker.hpp"
#include "pax/check/event.hpp"
#include "pax/check/trace_file.hpp"
#include "pax/common/status.hpp"

namespace pax::check {

namespace internal {
struct LockGraph;  // aggregated lock-order graph (analyze.cpp)
}  // namespace internal

enum class FindingKind : std::uint8_t {
  kLockCycle,          // cycle in the aggregated lock graph
  kLockRankViolation,  // aggregated edge against the documented lock order
  kCommitWindow,       // commit not HB-fenced after a dirty line's flush
  kWritebackWindow,    // ungated write-back not HB-after its log flush
  kUndoFlushWindow,    // data flush not HB-after its undo record's flush
  kOnlineViolation,    // the online rule engine fired during replay
};

const char* finding_kind_name(FindingKind k);

struct Finding {
  FindingKind kind = FindingKind::kOnlineViolation;
  std::string detail;
  std::size_t trace_index = 0;  // which add_trace call produced it
  std::uint64_t seq = 0;        // anchoring event in that trace (0 = n/a)
  std::uint64_t line = kNoLine;
  std::uint64_t epoch = 0;   // kCommitWindow
  std::uint64_t logger = 0;  // kWritebackWindow / kUndoFlushWindow
  std::uint64_t log_end = 0;  // undo-record end a repair must cover

  std::string to_string() const;
};

/// Edge counters from the HB reconstruction — the denominator of the
/// analyzer-throughput bench (bench/abl_paxscope).
struct HbStats {
  std::uint64_t events = 0;
  std::uint64_t program_edges = 0;
  std::uint64_t lock_edges = 0;
  std::uint64_t gate_edges = 0;
  std::uint64_t fork_join_edges = 0;
  std::uint64_t batch_edges = 0;
  std::uint64_t pipeline_edges = 0;

  std::uint64_t total_edges() const {
    return program_edges + lock_edges + gate_edges + fork_join_edges +
           batch_edges + pipeline_edges;
  }
};

struct AnalysisOptions {
  /// Also run each trace through the online rule engines (Checker::replay)
  /// and fold its violations in as kOnlineViolation findings.
  bool online_replay = true;
  bool lock_graph = true;
  bool persist_order = true;
};

struct AnalysisReport {
  std::vector<Finding> findings;
  HbStats stats;
  std::size_t traces = 0;

  bool clean() const { return findings.empty(); }
  std::size_t count(FindingKind k) const;
  std::string to_string() const;
  /// Machine-readable report: {"traces", "events", "hb_edges": {...},
  /// "clean", "findings": [{kind, detail, trace, seq, line, epoch, logger,
  /// log_end}]}.
  std::string to_json() const;
};

/// Multi-trace aggregation: feed every recorded run of the system under
/// test through add_trace, then finish() — per-trace passes (HB, persist
/// order, online replay) run as traces arrive, the lock graph accumulates
/// across all of them and is judged once at the end.
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(AnalysisOptions options = {});
  ~TraceAnalyzer();
  TraceAnalyzer(const TraceAnalyzer&) = delete;
  TraceAnalyzer& operator=(const TraceAnalyzer&) = delete;

  /// One recorded execution, in seq order (as recorded_events() and
  /// decode_trace return it). `version` is the trace-format version the
  /// events came from; pre-v2 streams get the lenient interpretation.
  Status add_trace(std::span<const Event> events,
                   std::uint32_t version = kTraceVersion);

  /// Runs the aggregated lock-graph pass and returns everything found.
  /// The analyzer may be reused afterwards (the lock graph keeps
  /// accumulating; per-trace findings are not re-reported).
  AnalysisReport finish();

 private:
  AnalysisOptions options_;
  std::vector<Finding> findings_;
  HbStats stats_;
  std::size_t traces_ = 0;
  std::unique_ptr<internal::LockGraph> lock_graph_;
};

/// Convenience driver for paxctl: read + analyze a set of .paxevt files.
Result<AnalysisReport> analyze_trace_files(
    std::span<const std::string> paths, AnalysisOptions options = {});

}  // namespace pax::check
